//! Property tests for the sharded backend's building blocks
//! (`simsearch_core::sharded`): the k-way `MatchSet` merge, the shard
//! partitioners, and the shard-local → global id remap.
//!
//! The merge's contract: for parts that are themselves valid
//! `MatchSet`s, the result is sorted, deduplicated, keeps the minimum
//! distance for ids present in several parts, and — for disjoint parts,
//! the case the sharded backend actually produces — equals
//! `MatchSet::from_unsorted` of the plain concatenation.

use simsearch_core::{merge_match_sets, partition_ids, remap_to_global, ShardBy};
use simsearch_data::{Dataset, Match, MatchSet};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config};
use std::collections::BTreeMap;

/// Raw per-shard `(id, distance)` pairs. Ids repeat freely, within and
/// across shards; shards may be empty, and so may the whole list.
fn parts_gen() -> simsearch_testkit::Gen<Vec<Vec<(u32, u32)>>> {
    gen::vec_of(
        gen::vec_of(gen::zip(gen::u32_in(0..40), gen::u32_in(0..8)), 0..12),
        0..6,
    )
}

/// Collapses raw pairs into a valid `MatchSet`: unique ids, minimum
/// distance kept on duplicates.
fn to_match_set(pairs: &[(u32, u32)]) -> MatchSet {
    let mut best: BTreeMap<u32, u32> = BTreeMap::new();
    for &(id, d) in pairs {
        best.entry(id).and_modify(|v| *v = (*v).min(d)).or_insert(d);
    }
    MatchSet::from_unsorted(best.into_iter().map(|(id, d)| Match::new(id, d)).collect())
}

/// Reference semantics of the merge: per-id minimum distance over every
/// part, sorted by id.
fn min_distance_union(parts: &[MatchSet]) -> MatchSet {
    let mut best: BTreeMap<u32, u32> = BTreeMap::new();
    for m in parts.iter().flat_map(MatchSet::matches) {
        best.entry(m.id)
            .and_modify(|v| *v = (*v).min(m.distance))
            .or_insert(m.distance);
    }
    MatchSet::from_unsorted(best.into_iter().map(|(id, d)| Match::new(id, d)).collect())
}

#[test]
fn merge_equals_min_distance_union_even_with_overlap() {
    check(
        "merge_equals_min_distance_union",
        Config::cases(512).seed(0x5AAD_0001),
        &parts_gen(),
        |raw| {
            let parts: Vec<MatchSet> = raw.iter().map(|p| to_match_set(p)).collect();
            let merged = merge_match_sets(&parts);
            prop_assert_eq!(&merged, &min_distance_union(&parts));
            let ids = merged.ids();
            prop_assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "merge output must be sorted and duplicate-free: {ids:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn merge_of_disjoint_parts_equals_from_unsorted_of_concatenation() {
    check(
        "merge_disjoint_is_concat",
        Config::cases(512).seed(0x5AAD_0002),
        &parts_gen(),
        |raw| {
            // Interleave shard indices into the ids so no id appears in
            // two parts — the invariant real shard partitions guarantee.
            let stride = raw.len().max(1) as u32;
            let parts: Vec<MatchSet> = raw
                .iter()
                .enumerate()
                .map(|(s, p)| {
                    let tagged: Vec<(u32, u32)> =
                        p.iter().map(|&(id, d)| (id * stride + s as u32, d)).collect();
                    to_match_set(&tagged)
                })
                .collect();
            let concat: Vec<Match> = parts
                .iter()
                .flat_map(|p| p.matches().iter().copied())
                .collect();
            prop_assert_eq!(merge_match_sets(&parts), MatchSet::from_unsorted(concat));
            Ok(())
        },
    );
}

#[test]
fn merge_is_commutative_and_associative() {
    check(
        "merge_commutative_associative",
        Config::cases(512).seed(0x5AAD_0003),
        &parts_gen(),
        |raw| {
            let parts: Vec<MatchSet> = raw.iter().map(|p| to_match_set(p)).collect();
            let merged = merge_match_sets(&parts);
            let mut reversed = parts.clone();
            reversed.reverse();
            prop_assert_eq!(merge_match_sets(&reversed), merged.clone(), "order-insensitive");
            let (a, b) = parts.split_at(parts.len() / 2);
            let folded = merge_match_sets(&[merge_match_sets(a), merge_match_sets(b)]);
            prop_assert_eq!(folded, merged.clone(), "merge of partial merges");
            // Empty parts are neutral elements.
            let mut padded = vec![MatchSet::default()];
            for p in &parts {
                padded.push(p.clone());
                padded.push(MatchSet::default());
            }
            prop_assert_eq!(merge_match_sets(&padded), merged.clone(), "empty parts are neutral");
            Ok(())
        },
    );
}

#[test]
fn partitions_are_bijective_and_remap_inverts_them() {
    let corpus_and_shape = gen::zip3(
        gen::corpus(gen::city_string(0..8), 0..30),
        gen::usize_in(1..12),
        gen::u32_in(0..2),
    );
    check(
        "partition_remap_bijection",
        Config::cases(256).seed(0x5AAD_0004),
        &corpus_and_shape,
        |(words, shard_count, by_raw)| {
            let by = if *by_raw == 0 { ShardBy::Len } else { ShardBy::Hash };
            let ds = Dataset::from_records(words.iter());
            let shards = partition_ids(&ds, *shard_count, by);
            prop_assert_eq!(shards.len(), *shard_count);

            // Disjoint, covering, strictly increasing per shard.
            let mut seen = vec![false; ds.len()];
            for ids in &shards {
                prop_assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "per-shard ids strictly increasing: {ids:?}"
                );
                for &id in ids {
                    prop_assert!(
                        !std::mem::replace(&mut seen[id as usize], true),
                        "id {id} assigned to two shards"
                    );
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "every record assigned to a shard");

            // Remap: the local→global map is monotone (ids strictly
            // increase), so the j-th local match becomes the j-th global
            // match with the same distance.
            let parts: Vec<MatchSet> = shards
                .iter()
                .map(|ids| {
                    let local = MatchSet::from_unsorted(
                        (0..ids.len())
                            .map(|i| Match::new(i as u32, (i % 5) as u32))
                            .collect(),
                    );
                    let global = remap_to_global(&local, ids);
                    assert_eq!(global.ids(), *ids, "remap hits exactly the globals");
                    for (l, g) in local.matches().iter().zip(global.matches()) {
                        assert_eq!(l.distance, g.distance, "remap keeps distances");
                    }
                    global
                })
                .collect();

            // Union of all remapped shards: every global id exactly once.
            let merged = merge_match_sets(&parts);
            prop_assert_eq!(merged.len(), ds.len());
            prop_assert_eq!(merged.ids(), (0..ds.len() as u32).collect::<Vec<_>>());
            Ok(())
        },
    );
}

#[test]
fn merge_handles_no_parts_and_all_empty_parts() {
    assert!(merge_match_sets(&[]).is_empty());
    assert!(merge_match_sets(&[MatchSet::default(), MatchSet::default()]).is_empty());
}

#[test]
fn more_shards_than_records_leaves_trailing_shards_empty_but_valid() {
    let ds = Dataset::from_records(["aa", "b", "cccc"]);
    for by in [ShardBy::Len, ShardBy::Hash] {
        let shards = partition_ids(&ds, 8, by);
        assert_eq!(shards.len(), 8);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 3, "{by:?}");
        assert!(
            shards.iter().filter(|s| s.is_empty()).count() >= 5,
            "{by:?}: 8 shards can hold at most 3 of 3 records non-empty"
        );
        // Singleton shards remap correctly too.
        for ids in &shards {
            let local = MatchSet::from_unsorted(
                (0..ids.len()).map(|i| Match::new(i as u32, 0)).collect(),
            );
            assert_eq!(remap_to_global(&local, ids).ids(), *ids);
        }
    }
}
