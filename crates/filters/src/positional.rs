//! Positional q-gram count filter.
//!
//! Strengthens the plain count filter ([`crate::qgram`]) with position
//! information: `k` edit operations shift any surviving q-gram by at
//! most `k` positions, so shared grams only count when their positions
//! differ by at most `k`. A record sharing the right grams in the wrong
//! places (e.g. a rotation) is rejected where the plain filter admits it.
//!
//! The maximum position-compatible matching between two sorted position
//! lists under the window `|p_x − p_y| ≤ k` is computed by the classical
//! greedy two-pointer sweep.

use crate::{DynFilter, PreparedFilter};
use simsearch_data::{Dataset, RecordId};

/// A `(gram code, position)` pair; profiles are sorted by gram then
/// position.
type Posting = (u64, u32);

/// Per-dataset positional q-gram profile table.
#[derive(Debug, Clone)]
pub struct PositionalQgramFilter {
    q: usize,
    postings: Vec<Posting>,
    /// `offsets[i]..offsets[i+1]` delimits record `i`'s profile.
    offsets: Vec<u32>,
}

impl PositionalQgramFilter {
    /// Builds profiles with gram size `q` (1 ≤ q ≤ 8).
    ///
    /// # Panics
    /// Panics if `q` is 0 or greater than 8.
    pub fn build(dataset: &Dataset, q: usize) -> Self {
        assert!((1..=8).contains(&q), "q must be in 1..=8");
        let mut postings = Vec::new();
        let mut offsets = Vec::with_capacity(dataset.len() + 1);
        offsets.push(0);
        let mut profile = Vec::new();
        for (_, record) in dataset.iter() {
            collect_positional_profile(record, q, &mut profile);
            postings.extend_from_slice(&profile);
            offsets.push(postings.len() as u32);
        }
        Self {
            q,
            postings,
            offsets,
        }
    }

    /// The gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Profile of record `id`, sorted by `(gram, position)`.
    pub fn profile_of(&self, id: RecordId) -> &[Posting] {
        let i = id as usize;
        &self.postings[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether record `id` can be within distance `k` of a query with the
    /// given sorted positional profile and byte length.
    pub fn admits(
        &self,
        query_profile: &[Posting],
        query_len: usize,
        id: RecordId,
        k: u32,
    ) -> bool {
        let required = query_len as i64 - self.q as i64 + 1 - (k as i64) * (self.q as i64);
        if required <= 0 {
            return true;
        }
        let matched = positional_matching(query_profile, self.profile_of(id), k);
        matched as i64 >= required
    }
}

/// Collects the sorted `(gram, position)` profile of `s`.
pub fn collect_positional_profile(s: &[u8], q: usize, out: &mut Vec<Posting>) {
    out.clear();
    if s.len() < q {
        return;
    }
    for (pos, w) in s.windows(q).enumerate() {
        let mut code = 0u64;
        for &b in w {
            code = (code << 8) | b as u64;
        }
        out.push((code, pos as u32));
    }
    out.sort_unstable();
}

/// Size of the maximum matching between equal grams whose positions
/// differ by at most `k` (greedy sweep per gram run).
fn positional_matching(a: &[Posting], b: &[Posting], k: u32) -> usize {
    let (mut i, mut j, mut matched) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Runs of the same gram in both profiles.
                let g = a[i].0;
                let (ai, bj) = (i, j);
                while i < a.len() && a[i].0 == g {
                    i += 1;
                }
                while j < b.len() && b[j].0 == g {
                    j += 1;
                }
                let (mut x, mut y) = (ai, bj);
                while x < i && y < j {
                    if a[x].1.abs_diff(b[y].1) <= k {
                        matched += 1;
                        x += 1;
                        y += 1;
                    } else if a[x].1 < b[y].1 {
                        x += 1;
                    } else {
                        y += 1;
                    }
                }
            }
        }
    }
    matched
}

/// Prepared per-query state: the query's sorted positional profile.
pub struct PreparedPositional<'a> {
    filter: &'a PositionalQgramFilter,
    profile: Vec<Posting>,
    query_len: usize,
    k: u32,
}

impl DynFilter for PositionalQgramFilter {
    fn name(&self) -> &'static str {
        "positional-qgram"
    }

    fn prepare<'a>(&'a self, query: &[u8], k: u32) -> Box<dyn PreparedFilter + 'a> {
        let mut profile = Vec::new();
        collect_positional_profile(query, self.q, &mut profile);
        Box::new(PreparedPositional {
            filter: self,
            profile,
            query_len: query.len(),
            k,
        })
    }
}

impl PreparedFilter for PreparedPositional<'_> {
    fn admits(&self, id: RecordId) -> bool {
        self.filter.admits(&self.profile, self.query_len, id, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_distance::levenshtein;

    #[test]
    fn never_rejects_a_true_match() {
        let words = ["Berlin", "Bern", "nilreB", "BerlinBerlin", "", "rlinBe"];
        let ds = Dataset::from_records(words);
        for q in 1..=3usize {
            let f = PositionalQgramFilter::build(&ds, q);
            for query in words {
                let mut profile = Vec::new();
                collect_positional_profile(query.as_bytes(), q, &mut profile);
                for (id, w) in words.iter().enumerate() {
                    let d = levenshtein(query.as_bytes(), w.as_bytes());
                    for k in 0..6 {
                        if d <= k {
                            assert!(
                                f.admits(&profile, query.len(), id as RecordId, k),
                                "q={q}: rejected true match {query} ~ {w} (d={d}, k={k})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_shifted_gram_sharers_that_plain_filter_admits() {
        // "abXcd...Xab": shares the grams of "ab...cd" but at far-away
        // positions; position windows kill it.
        let long_a = format!("ab{}cd", "x".repeat(20));
        let long_b = format!("cd{}ab", "x".repeat(20));
        let ds = Dataset::from_records([long_b.clone()]);
        let plain = crate::QgramFilter::build(&ds, 2);
        let positional = PositionalQgramFilter::build(&ds, 2);
        let mut pp = Vec::new();
        crate::qgram::collect_profile(long_a.as_bytes(), 2, &mut pp);
        let mut qp = Vec::new();
        collect_positional_profile(long_a.as_bytes(), 2, &mut qp);
        // Distance is 4 (swap both ends); at k = 3 neither string matches.
        assert!(levenshtein(long_a.as_bytes(), long_b.as_bytes()) > 3);
        // The plain count filter admits (many shared "xx" grams suffice
        // regardless of position) ...
        assert!(plain.admits(&pp, long_a.len(), 0, 3));
        // ... the positional window also counts the "xx" run as shifted-
        // compatible, but the end grams no longer contribute:
        let matched = positional_matching(&qp, positional.profile_of(0), 3);
        let plain_shared = {
            let mut other = Vec::new();
            crate::qgram::collect_profile(long_b.as_bytes(), 2, &mut other);
            pp.iter().filter(|g| other.contains(g)).count()
        };
        assert!(matched < plain_shared, "{matched} vs {plain_shared}");
    }

    #[test]
    fn window_matching_is_greedy_optimal_on_runs() {
        // gram G at positions [0, 10] vs [9, 11] with k = 1:
        // optimal matching is 2 (10-9? no: |0-9|>1; 10~9, nothing for 0;
        // or 10~11). Max matching = 1.
        let a = [(7u64, 0u32), (7, 10)];
        let b = [(7u64, 9u32), (7, 11)];
        assert_eq!(positional_matching(&a, &b, 1), 1);
        // With k = 9: 0~9 and 10~11 -> 2.
        assert_eq!(positional_matching(&a, &b, 9), 2);
    }

    #[test]
    fn dyn_interface_round_trip() {
        let ds = Dataset::from_records(["AAAAAAAAAA", "TTTTTTTTTT"]);
        let f = PositionalQgramFilter::build(&ds, 2);
        let p = f.prepare(b"AAAAAAAAAA", 1);
        assert!(p.admits(0));
        assert!(!p.admits(1));
        assert_eq!(f.q(), 2);
    }
}
