//! The length filter (paper §3.2, eq. (5)): `ed(x, y) ≥ | |x| − |y| |`.
//!
//! Built over a dataset, it stores every record length once so the scan
//! never touches the byte arena for a hopeless candidate.

use crate::{DynFilter, PreparedFilter};
use simsearch_data::{Dataset, RecordId};

/// Per-dataset record-length table.
#[derive(Debug, Clone)]
pub struct LengthFilter {
    lens: Vec<u32>,
}

impl LengthFilter {
    /// Builds the table for `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let lens = (0..dataset.len() as u32)
            .map(|id| dataset.record_len(id) as u32)
            .collect();
        Self { lens }
    }

    /// Record length lookup.
    pub fn len_of(&self, id: RecordId) -> u32 {
        self.lens[id as usize]
    }

    /// Whether record `id` can be within distance `k` of a query of
    /// length `query_len`.
    #[inline]
    pub fn admits(&self, query_len: u32, id: RecordId, k: u32) -> bool {
        self.lens[id as usize].abs_diff(query_len) <= k
    }
}

/// Prepared per-query state: the query length and threshold.
pub struct PreparedLength<'a> {
    filter: &'a LengthFilter,
    query_len: u32,
    k: u32,
}

impl DynFilter for LengthFilter {
    fn name(&self) -> &'static str {
        "length"
    }

    fn prepare<'a>(&'a self, query: &[u8], k: u32) -> Box<dyn PreparedFilter + 'a> {
        Box::new(PreparedLength {
            filter: self,
            query_len: query.len() as u32,
            k,
        })
    }
}

impl PreparedFilter for PreparedLength<'_> {
    fn admits(&self, id: RecordId) -> bool {
        self.filter.admits(self.query_len, id, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_iff_length_within_k() {
        let ds = Dataset::from_records(["a", "abc", "abcdef"]);
        let f = LengthFilter::build(&ds);
        assert!(f.admits(3, 1, 0)); // |abc| == 3
        assert!(f.admits(3, 0, 2)); // |a| = 1, diff 2
        assert!(!f.admits(3, 0, 1));
        assert!(f.admits(3, 2, 3)); // |abcdef| = 6, diff 3
        assert!(!f.admits(3, 2, 2));
    }

    #[test]
    fn dyn_interface_matches_direct() {
        let ds = Dataset::from_records(["aa", "aaaa"]);
        let f = LengthFilter::build(&ds);
        let p = f.prepare(b"aaa", 1);
        assert!(p.admits(0));
        assert!(p.admits(1));
        let p0 = f.prepare(b"aaa", 0);
        assert!(!p0.admits(0));
        assert!(!p0.admits(1));
    }

    #[test]
    fn len_of_reports_record_length() {
        let ds = Dataset::from_records(["", "xyz"]);
        let f = LengthFilter::build(&ds);
        assert_eq!(f.len_of(0), 0);
        assert_eq!(f.len_of(1), 3);
    }
}
