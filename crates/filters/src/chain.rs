//! Filter chains: cheap filters first, candidate survives only if every
//! filter admits it.

use crate::{DynFilter, PreparedFilter};
use simsearch_data::RecordId;

/// An ordered set of filters applied conjunctively.
/// # Examples
///
/// ```
/// use simsearch_data::Dataset;
/// use simsearch_filters::{FilterChain, LengthFilter};
///
/// let ds = Dataset::from_records(["aa", "aaaa"]);
/// let chain = FilterChain::new().push(LengthFilter::build(&ds));
/// let prepared = chain.prepare(b"aaa", 1);
/// assert!(prepared.admits(0));
/// assert!(prepared.admits(1));
/// ```
#[derive(Default)]
pub struct FilterChain {
    filters: Vec<Box<dyn DynFilter>>,
}

impl FilterChain {
    /// Creates an empty chain (admits everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a filter; filters run in insertion order, so put the
    /// cheapest first.
    pub fn push(mut self, filter: impl DynFilter + 'static) -> Self {
        self.filters.push(Box::new(filter));
        self
    }

    /// Number of filters in the chain.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Filter names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.filters.iter().map(|f| f.name()).collect()
    }

    /// Prepares all filters for one query.
    pub fn prepare(&self, query: &[u8], k: u32) -> PreparedChain<'_> {
        PreparedChain {
            prepared: self.filters.iter().map(|f| f.prepare(query, k)).collect(),
        }
    }
}

impl std::fmt::Debug for FilterChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FilterChain{:?}", self.names())
    }
}

/// Per-query prepared state of a whole chain.
pub struct PreparedChain<'a> {
    prepared: Vec<Box<dyn PreparedFilter + 'a>>,
}

impl PreparedChain<'_> {
    /// Whether every filter admits record `id`.
    #[inline]
    pub fn admits(&self, id: RecordId) -> bool {
        self.prepared.iter().all(|p| p.admits(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::FrequencyFilter;
    use crate::length::LengthFilter;
    use simsearch_data::alphabet::DNA_SYMBOLS;
    use simsearch_data::Dataset;

    #[test]
    fn empty_chain_admits_everything() {
        let chain = FilterChain::new();
        let p = chain.prepare(b"anything", 0);
        assert!(p.admits(12345));
        assert!(chain.is_empty());
    }

    #[test]
    fn chain_is_conjunctive() {
        let ds = Dataset::from_records(["AAAA", "TTTT", "AAAATTTT"]);
        let chain = FilterChain::new()
            .push(LengthFilter::build(&ds))
            .push(FrequencyFilter::build(&ds, DNA_SYMBOLS));
        assert_eq!(chain.names(), vec!["length", "frequency"]);
        let p = chain.prepare(b"AAAA", 2);
        assert!(p.admits(0)); // identical
        assert!(!p.admits(1)); // right length, wrong composition
        assert!(!p.admits(2)); // wrong length
    }

    #[test]
    fn order_is_preserved() {
        let ds = Dataset::from_records(["x"]);
        let chain = FilterChain::new()
            .push(FrequencyFilter::build(&ds, DNA_SYMBOLS))
            .push(LengthFilter::build(&ds));
        assert_eq!(chain.names(), vec!["frequency", "length"]);
        assert_eq!(chain.len(), 2);
    }
}
