//! Frequency-vector filter — the paper's §6 "frequency vectors" future
//! work, as a per-record filter.
//!
//! For each record, the occurrence counts of five tracked symbols
//! (A, C, G, N, T for DNA; the vowels for city names) plus an "other"
//! bucket are precomputed. At query time the sound lower bound
//! `ed ≥ max(⌈L1/2⌉, |Δlen|)` (see [`simsearch_data::freq`]) rejects
//! candidates before any DP row is computed.

use crate::{DynFilter, PreparedFilter};
use simsearch_data::freq::{FreqVector, TRACKED};
use simsearch_data::{Dataset, RecordId};

/// Per-dataset frequency-vector table.
#[derive(Debug, Clone)]
pub struct FrequencyFilter {
    tracked: [u8; TRACKED],
    vectors: Vec<FreqVector>,
}

impl FrequencyFilter {
    /// Builds the table, tracking the given five symbols.
    pub fn build(dataset: &Dataset, tracked: [u8; TRACKED]) -> Self {
        let vectors = dataset
            .records()
            .map(|r| FreqVector::compute(r, &tracked))
            .collect();
        Self { tracked, vectors }
    }

    /// The tracked symbol set.
    pub fn tracked(&self) -> &[u8; TRACKED] {
        &self.tracked
    }

    /// The precomputed vector of record `id`.
    pub fn vector_of(&self, id: RecordId) -> &FreqVector {
        &self.vectors[id as usize]
    }

    /// Whether record `id` can be within distance `k` of a query whose
    /// vector is `query_vec`.
    #[inline]
    pub fn admits(&self, query_vec: &FreqVector, id: RecordId, k: u32) -> bool {
        query_vec.ed_lower_bound(&self.vectors[id as usize]) <= k
    }
}

/// Prepared per-query state: the query's own frequency vector.
pub struct PreparedFrequency<'a> {
    filter: &'a FrequencyFilter,
    query_vec: FreqVector,
    k: u32,
}

impl DynFilter for FrequencyFilter {
    fn name(&self) -> &'static str {
        "frequency"
    }

    fn prepare<'a>(&'a self, query: &[u8], k: u32) -> Box<dyn PreparedFilter + 'a> {
        Box::new(PreparedFrequency {
            filter: self,
            query_vec: FreqVector::compute(query, &self.tracked),
            k,
        })
    }
}

impl PreparedFilter for PreparedFrequency<'_> {
    fn admits(&self, id: RecordId) -> bool {
        self.filter.admits(&self.query_vec, id, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::alphabet::DNA_SYMBOLS;
    use simsearch_distance::levenshtein;

    #[test]
    fn rejects_compositionally_distant_records() {
        let ds = Dataset::from_records(["AAAA", "TTTT", "AATT"]);
        let f = FrequencyFilter::build(&ds, DNA_SYMBOLS);
        let q = FreqVector::compute(b"AAAA", &DNA_SYMBOLS);
        assert!(f.admits(&q, 0, 0));
        assert!(!f.admits(&q, 1, 3)); // needs 4 substitutions
        assert!(f.admits(&q, 1, 4));
        assert!(!f.admits(&q, 2, 1)); // needs 2
        assert!(f.admits(&q, 2, 2));
    }

    #[test]
    fn never_rejects_a_true_match() {
        // Soundness check against the oracle on a small corpus.
        let words = ["AGGCGT", "AGAGT", "AGGT", "TTTT", "A", "", "NNNAN"];
        let ds = Dataset::from_records(words);
        let f = FrequencyFilter::build(&ds, DNA_SYMBOLS);
        for q in words {
            let qv = FreqVector::compute(q.as_bytes(), &DNA_SYMBOLS);
            for (id, w) in words.iter().enumerate() {
                let d = levenshtein(q.as_bytes(), w.as_bytes());
                for k in 0..8 {
                    if d <= k {
                        assert!(
                            f.admits(&qv, id as RecordId, k),
                            "filter rejected true match {q} ~ {w} (d={d}, k={k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dyn_interface_matches_direct() {
        let ds = Dataset::from_records(["AAAA", "TTTT"]);
        let f = FrequencyFilter::build(&ds, DNA_SYMBOLS);
        let p = f.prepare(b"AAAA", 2);
        assert!(p.admits(0));
        assert!(!p.admits(1));
    }
}
