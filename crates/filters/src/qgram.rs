//! Q-gram count filter.
//!
//! A classical companion to the techniques in the paper's related work:
//! one edit operation destroys at most `q` of a string's overlapping
//! q-grams, so if `ed(x, y) ≤ k` then the multiset of q-grams shared by
//! `x` and `y` has size at least `(|x| − q + 1) − k·q`. When the shared
//! count falls below that, the candidate is rejected without any DP.
//! Strings shorter than `q` make the bound vacuous and are always
//! admitted.
//!
//! Each record's q-grams are precomputed as a *sorted* list of integer
//! codes (a q-gram of up to 8 bytes packs into a `u64`), so the shared
//! count is a linear merge.

use crate::{DynFilter, PreparedFilter};
use simsearch_data::{Dataset, RecordId};

/// Per-dataset q-gram profile table.
#[derive(Debug, Clone)]
pub struct QgramFilter {
    q: usize,
    /// Concatenated sorted q-gram codes of all records.
    grams: Vec<u64>,
    /// `offsets[i]..offsets[i+1]` delimits record `i`'s profile.
    offsets: Vec<u32>,
}

impl QgramFilter {
    /// Builds profiles with gram size `q` (1 ≤ q ≤ 8).
    ///
    /// # Panics
    /// Panics if `q` is 0 or greater than 8.
    pub fn build(dataset: &Dataset, q: usize) -> Self {
        assert!((1..=8).contains(&q), "q must be in 1..=8");
        let mut grams = Vec::new();
        let mut offsets = Vec::with_capacity(dataset.len() + 1);
        offsets.push(0);
        let mut profile = Vec::new();
        for (_, record) in dataset.iter() {
            profile.clear();
            collect_profile(record, q, &mut profile);
            grams.extend_from_slice(&profile);
            offsets.push(grams.len() as u32);
        }
        Self { q, grams, offsets }
    }

    /// The gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Sorted profile of record `id`.
    pub fn profile_of(&self, id: RecordId) -> &[u64] {
        let i = id as usize;
        &self.grams[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether record `id` can be within distance `k` of a query with the
    /// given sorted profile and byte length.
    pub fn admits(&self, query_profile: &[u64], query_len: usize, id: RecordId, k: u32) -> bool {
        // Required shared grams: (|x| − q + 1) − k·q, from the query side.
        let total = query_len as i64 - self.q as i64 + 1;
        let required = total - (k as i64) * (self.q as i64);
        if required <= 0 {
            return true;
        }
        let shared = sorted_multiset_intersection(query_profile, self.profile_of(id));
        shared as i64 >= required
    }
}

/// Packs each overlapping window of `q` bytes into a big-endian `u64`
/// code and sorts the result (multiset semantics).
pub fn collect_profile(s: &[u8], q: usize, out: &mut Vec<u64>) {
    out.clear();
    if s.len() < q {
        return;
    }
    for w in s.windows(q) {
        let mut code = 0u64;
        for &b in w {
            code = (code << 8) | b as u64;
        }
        out.push(code);
    }
    out.sort_unstable();
}

/// Size of the multiset intersection of two sorted slices.
fn sorted_multiset_intersection(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Prepared per-query state: the query's sorted profile.
pub struct PreparedQgram<'a> {
    filter: &'a QgramFilter,
    profile: Vec<u64>,
    query_len: usize,
    k: u32,
}

impl DynFilter for QgramFilter {
    fn name(&self) -> &'static str {
        "qgram"
    }

    fn prepare<'a>(&'a self, query: &[u8], k: u32) -> Box<dyn PreparedFilter + 'a> {
        let mut profile = Vec::new();
        collect_profile(query, self.q, &mut profile);
        Box::new(PreparedQgram {
            filter: self,
            profile,
            query_len: query.len(),
            k,
        })
    }
}

impl PreparedFilter for PreparedQgram<'_> {
    fn admits(&self, id: RecordId) -> bool {
        self.filter.admits(&self.profile, self.query_len, id, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_distance::levenshtein;

    #[test]
    fn profile_is_sorted_multiset() {
        let mut p = Vec::new();
        collect_profile(b"ABAB", 2, &mut p);
        // Grams: AB, BA, AB -> sorted [AB, AB, BA].
        assert_eq!(p.len(), 3);
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p[0], p[1]);
    }

    #[test]
    fn short_strings_are_always_admitted() {
        let ds = Dataset::from_records(["a", "zz"]);
        let f = QgramFilter::build(&ds, 3);
        let mut p = Vec::new();
        collect_profile(b"xy", 3, &mut p);
        assert!(f.admits(&p, 2, 0, 0));
        assert!(f.admits(&p, 2, 1, 0));
    }

    #[test]
    fn rejects_dissimilar_strings() {
        let ds = Dataset::from_records(["AAAAAAAAAA", "TTTTTTTTTT"]);
        let f = QgramFilter::build(&ds, 2);
        let mut p = Vec::new();
        collect_profile(b"AAAAAAAAAA", 2, &mut p);
        assert!(f.admits(&p, 10, 0, 0));
        // 10-byte query, q=2: needs 9 − 2k shared grams; record 1 shares 0.
        assert!(!f.admits(&p, 10, 1, 4));
    }

    #[test]
    fn never_rejects_a_true_match() {
        let words = ["AGGCGT", "AGAGT", "Berlin", "Bern", "Bärlin", "", "x"];
        let ds = Dataset::from_records(words);
        for q in 1..=4usize {
            let f = QgramFilter::build(&ds, q);
            for query in words {
                let mut profile = Vec::new();
                collect_profile(query.as_bytes(), q, &mut profile);
                for (id, w) in words.iter().enumerate() {
                    let d = levenshtein(query.as_bytes(), w.as_bytes());
                    for k in 0..6 {
                        if d <= k {
                            assert!(
                                f.admits(&profile, query.len(), id as RecordId, k),
                                "q={q}: rejected true match {query} ~ {w} (d={d}, k={k})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dyn_interface_matches_direct() {
        let ds = Dataset::from_records(["AAAAAAAAAA", "TTTTTTTTTT"]);
        let f = QgramFilter::build(&ds, 2);
        let p = f.prepare(b"AAAAAAAAAA", 1);
        assert!(p.admits(0));
        assert!(!p.admits(1));
    }

    #[test]
    #[should_panic(expected = "q must be in 1..=8")]
    fn oversized_q_panics() {
        QgramFilter::build(&Dataset::new(), 9);
    }
}
