//! # simsearch-filters
//!
//! Candidate filters for the `simsearch` workspace — sound reject tests
//! that run before any edit-distance computation.
//!
//! A filter never rejects a true match (soundness is covered by unit and
//! property tests); it may admit false positives, which the distance
//! kernel then eliminates. Provided filters:
//!
//! * [`length::LengthFilter`] — the paper's §3.2 length filter, eq. (5);
//! * [`frequency::FrequencyFilter`] — the paper's §6 frequency vectors;
//! * [`qgram::QgramFilter`] — the classical q-gram count filter
//!   (related-work technique, used by the q-gram index baseline);
//! * [`positional::PositionalQgramFilter`] — the position-windowed
//!   strengthening of the count filter;
//! * [`chain::FilterChain`] — conjunctive composition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod frequency;
pub mod length;
pub mod positional;
pub mod qgram;

pub use chain::{FilterChain, PreparedChain};
pub use frequency::FrequencyFilter;
pub use length::LengthFilter;
pub use positional::PositionalQgramFilter;
pub use qgram::QgramFilter;

use simsearch_data::RecordId;

/// A dataset-bound filter that can be prepared for one query.
pub trait DynFilter: Send + Sync {
    /// Stable short name for reports.
    fn name(&self) -> &'static str;

    /// Prepares per-query state (computed once, probed per candidate).
    fn prepare<'a>(&'a self, query: &[u8], k: u32) -> Box<dyn PreparedFilter + 'a>;
}

/// Per-query prepared state of a filter.
pub trait PreparedFilter {
    /// Whether record `id` might still match (false = provably not).
    fn admits(&self, id: RecordId) -> bool;
}
