//! Property tests: no filter may ever reject a pair that is actually
//! within the threshold (soundness); chains inherit soundness.

use proptest::prelude::*;
use simsearch_data::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};
use simsearch_data::Dataset;
use simsearch_distance::levenshtein;
use simsearch_filters::{FilterChain, FrequencyFilter, LengthFilter, QgramFilter};

fn corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15),
        1..12,
    )
}

proptest! {
    #[test]
    fn length_filter_is_sound(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..6) {
        let ds = Dataset::from_records(&words);
        let f = LengthFilter::build(&ds);
        for (id, w) in words.iter().enumerate() {
            if levenshtein(&query, w) <= k {
                prop_assert!(f.admits(query.len() as u32, id as u32, k));
            }
        }
    }

    #[test]
    fn frequency_filter_is_sound(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..6) {
        let ds = Dataset::from_records(&words);
        for tracked in [DNA_SYMBOLS, VOWEL_SYMBOLS] {
            let f = FrequencyFilter::build(&ds, tracked);
            let p = simsearch_filters::DynFilter::prepare(&f, &query, k);
            for (id, w) in words.iter().enumerate() {
                if levenshtein(&query, w) <= k {
                    prop_assert!(p.admits(id as u32), "tracked={tracked:?} q={query:?} w={w:?}");
                }
            }
        }
    }

    #[test]
    fn qgram_filter_is_sound(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..6, q in 1usize..5) {
        let ds = Dataset::from_records(&words);
        let f = QgramFilter::build(&ds, q);
        let p = simsearch_filters::DynFilter::prepare(&f, &query, k);
        for (id, w) in words.iter().enumerate() {
            if levenshtein(&query, w) <= k {
                prop_assert!(p.admits(id as u32), "q={q} query={query:?} w={w:?}");
            }
        }
    }

    #[test]
    fn full_chain_is_sound(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..6) {
        let ds = Dataset::from_records(&words);
        let chain = FilterChain::new()
            .push(LengthFilter::build(&ds))
            .push(FrequencyFilter::build(&ds, DNA_SYMBOLS))
            .push(QgramFilter::build(&ds, 2));
        let p = chain.prepare(&query, k);
        for (id, w) in words.iter().enumerate() {
            if levenshtein(&query, w) <= k {
                prop_assert!(p.admits(id as u32));
            }
        }
    }
}

proptest! {
    #[test]
    fn positional_qgram_filter_is_sound(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..6, q in 1usize..5) {
        use simsearch_filters::positional::{collect_positional_profile, PositionalQgramFilter};
        let ds = Dataset::from_records(&words);
        let f = PositionalQgramFilter::build(&ds, q);
        let mut profile = Vec::new();
        collect_positional_profile(&query, q, &mut profile);
        for (id, w) in words.iter().enumerate() {
            if levenshtein(&query, w) <= k {
                prop_assert!(f.admits(&profile, query.len(), id as u32, k), "q={q} query={query:?} w={w:?}");
            }
        }
    }

    #[test]
    fn positional_never_admits_more_than_plain(words in corpus(), query in proptest::collection::vec(proptest::sample::select(b"ACGNTE".to_vec()), 0..15), k in 0u32..5) {
        use simsearch_filters::positional::{collect_positional_profile, PositionalQgramFilter};
        use simsearch_filters::qgram::collect_profile;
        let ds = Dataset::from_records(&words);
        let plain = QgramFilter::build(&ds, 2);
        let pos = PositionalQgramFilter::build(&ds, 2);
        let mut pp = Vec::new();
        collect_profile(&query, 2, &mut pp);
        let mut qp = Vec::new();
        collect_positional_profile(&query, 2, &mut qp);
        for id in 0..words.len() as u32 {
            // Positional is a strict strengthening: whenever it admits,
            // the plain filter admits too.
            if pos.admits(&qp, query.len(), id, k) {
                prop_assert!(plain.admits(&pp, query.len(), id, k));
            }
        }
    }
}
