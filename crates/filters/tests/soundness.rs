//! Property tests: no filter may ever reject a pair that is actually
//! within the threshold (soundness); chains inherit soundness.

use simsearch_data::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};
use simsearch_data::Dataset;
use simsearch_distance::levenshtein;
use simsearch_filters::{FilterChain, FrequencyFilter, LengthFilter, QgramFilter};
use simsearch_testkit::{check, gen, prop_assert, Config, Gen};

const ALPHABET: &[u8] = b"ACGNTE";
const SEED: u64 = 0xF117E25;

fn corpus() -> Gen<Vec<Vec<u8>>> {
    gen::corpus(gen::bytes_from(ALPHABET, 0..15), 1..12)
}

fn query() -> Gen<Vec<u8>> {
    gen::bytes_from(ALPHABET, 0..15)
}

#[test]
fn length_filter_is_sound() {
    check(
        "length_filter_is_sound",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), query(), gen::u32_in(0..6)),
        |(words, query, k)| {
            let ds = Dataset::from_records(words);
            let f = LengthFilter::build(&ds);
            for (id, w) in words.iter().enumerate() {
                if levenshtein(query, w) <= *k {
                    prop_assert!(f.admits(query.len() as u32, id as u32, *k));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn frequency_filter_is_sound() {
    check(
        "frequency_filter_is_sound",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), query(), gen::u32_in(0..6)),
        |(words, query, k)| {
            let ds = Dataset::from_records(words);
            for tracked in [DNA_SYMBOLS, VOWEL_SYMBOLS] {
                let f = FrequencyFilter::build(&ds, tracked);
                let p = simsearch_filters::DynFilter::prepare(&f, query, *k);
                for (id, w) in words.iter().enumerate() {
                    if levenshtein(query, w) <= *k {
                        prop_assert!(
                            p.admits(id as u32),
                            "tracked={tracked:?} q={query:?} w={w:?}"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn qgram_filter_is_sound() {
    check(
        "qgram_filter_is_sound",
        Config::default().seed(SEED),
        &gen::zip4(corpus(), query(), gen::u32_in(0..6), gen::usize_in(1..5)),
        |(words, query, k, q)| {
            let ds = Dataset::from_records(words);
            let f = QgramFilter::build(&ds, *q);
            let p = simsearch_filters::DynFilter::prepare(&f, query, *k);
            for (id, w) in words.iter().enumerate() {
                if levenshtein(query, w) <= *k {
                    prop_assert!(p.admits(id as u32), "q={q} query={query:?} w={w:?}");
                }
            }
            Ok(())
        },
    );
}

#[test]
fn full_chain_is_sound() {
    check(
        "full_chain_is_sound",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), query(), gen::u32_in(0..6)),
        |(words, query, k)| {
            let ds = Dataset::from_records(words);
            let chain = FilterChain::new()
                .push(LengthFilter::build(&ds))
                .push(FrequencyFilter::build(&ds, DNA_SYMBOLS))
                .push(QgramFilter::build(&ds, 2));
            let p = chain.prepare(query, *k);
            for (id, w) in words.iter().enumerate() {
                if levenshtein(query, w) <= *k {
                    prop_assert!(p.admits(id as u32));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn positional_qgram_filter_is_sound() {
    use simsearch_filters::positional::{collect_positional_profile, PositionalQgramFilter};
    check(
        "positional_qgram_filter_is_sound",
        Config::default().seed(SEED),
        &gen::zip4(corpus(), query(), gen::u32_in(0..6), gen::usize_in(1..5)),
        |(words, query, k, q)| {
            let ds = Dataset::from_records(words);
            let f = PositionalQgramFilter::build(&ds, *q);
            let mut profile = Vec::new();
            collect_positional_profile(query, *q, &mut profile);
            for (id, w) in words.iter().enumerate() {
                if levenshtein(query, w) <= *k {
                    prop_assert!(
                        f.admits(&profile, query.len(), id as u32, *k),
                        "q={q} query={query:?} w={w:?}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn positional_never_admits_more_than_plain() {
    use simsearch_filters::positional::{collect_positional_profile, PositionalQgramFilter};
    use simsearch_filters::qgram::collect_profile;
    check(
        "positional_never_admits_more_than_plain",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), query(), gen::u32_in(0..5)),
        |(words, query, k)| {
            let ds = Dataset::from_records(words);
            let plain = QgramFilter::build(&ds, 2);
            let pos = PositionalQgramFilter::build(&ds, 2);
            let mut pp = Vec::new();
            collect_profile(query, 2, &mut pp);
            let mut qp = Vec::new();
            collect_positional_profile(query, 2, &mut qp);
            for id in 0..words.len() as u32 {
                // Positional is a strict strengthening: whenever it admits,
                // the plain filter admits too.
                if pos.admits(&qp, query.len(), id, *k) {
                    prop_assert!(plain.admits(&pp, query.len(), id, *k));
                }
            }
            Ok(())
        },
    );
}
