//! Partition-based similarity self-join: PASS-JOIN and a MinJoin-style
//! content-defined variant.
//!
//! [`join`](crate::join) covers the quadratic contenders; this module is
//! the sub-quadratic tier:
//!
//! * [`pass_join`] — exact PASS-JOIN (Li et al.): every record is split
//!   into `k + 1` even segments, an inverted index maps
//!   `(record length, segment position, segment bytes)` to record ids,
//!   and each record probes the index with the substrings selected by
//!   the position/length filters. By pigeonhole, `k` edits can corrupt
//!   at most `k` of `k + 1` segments, so one segment of the shorter
//!   string always survives verbatim inside the longer — candidate
//!   generation is lossless and the banded kernel keeps it exact.
//! * [`min_join`] — MinJoin-flavoured content-defined partitioning
//!   (Zhang & Zhang): segment boundaries sit at local minima of a
//!   seeded q-gram hash, so matching substrings of *different* records
//!   partition identically regardless of position. Records too short to
//!   carry enough segments for the pigeonhole argument fall back to the
//!   length-window scan, which keeps the variant exact end to end.
//!
//! Both return the same normalized `Vec<JoinPair>` as the quadratic
//! joins and are gated pair-for-pair against [`nested_loop_join`]
//! (`tests/join_oracle.rs`).
//!
//! [`nested_loop_join`]: crate::join::nested_loop_join

use std::collections::HashMap;

use simsearch_data::{Dataset, RecordId};
use simsearch_distance::ed_within_banded_with;
use simsearch_parallel::{chunk_ranges, run_queries, Strategy};

use crate::join::{length_order, normalize, JoinPair};

/// Counters describing one partition-join execution, surfaced through
/// the daemon's `STATS` JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Result pairs emitted (after normalization).
    pub pairs_emitted: u64,
    /// Candidate pairs handed to the verification kernel (after
    /// candidate dedup).
    pub candidates_verified: u64,
    /// Distinct keys in the inverted segment index.
    pub seg_buckets: u64,
    /// Postings in the inverted segment index (one per record per
    /// segment).
    pub seg_postings: u64,
    /// Records joined by the length-window fallback instead of the
    /// partition index (MinJoin's short-string pool; always 0 for
    /// PASS-JOIN).
    pub fallback_records: u64,
}

/// The even-partition scheme of PASS-JOIN: a string of length `len`
/// split into exactly `k + 1` contiguous segments whose lengths differ
/// by at most one. The first segments take the floor length and the
/// last `len mod (k + 1)` take the ceiling, so the split is a pure
/// function of `(len, k)` — both sides of a join derive identical
/// segment positions without coordination. Zero-length segments are
/// legal (they appear when `len ≤ k`). Returns `(start, len)` per
/// segment.
pub fn even_partitions(len: usize, k: u32) -> Vec<(usize, usize)> {
    let parts = k as usize + 1;
    let base = len / parts;
    let longer = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let seg = if i < parts - longer { base } else { base + 1 };
        out.push((start, seg));
        start += seg;
    }
    out
}

/// Inverted segment index: `(record length, segment position, segment
/// bytes)` → ids of the records that carry that segment there. Borrowed
/// straight from the dataset arena — building it copies nothing.
struct SegmentIndex<'a> {
    buckets: HashMap<(u32, u32, &'a [u8]), Vec<RecordId>>,
    postings: u64,
}

fn build_segment_index(dataset: &Dataset, k: u32) -> SegmentIndex<'_> {
    let mut buckets: HashMap<(u32, u32, &[u8]), Vec<RecordId>> = HashMap::new();
    let mut postings = 0u64;
    for (id, record) in dataset.iter() {
        for (seg, &(start, len)) in even_partitions(record.len(), k).iter().enumerate() {
            buckets
                .entry((record.len() as u32, seg as u32, &record[start..start + len]))
                .or_default()
                .push(id);
            postings += 1;
        }
    }
    SegmentIndex { buckets, postings }
}

/// Probes the index with one record, appending verified pairs to `out`.
/// Returns the number of candidates verified.
///
/// Each unordered pair is generated exactly once: the longer record
/// probes for the shorter's segments (`l ≤ lr`), and at equal length
/// only candidates with a smaller id are accepted.
fn probe_record(
    dataset: &Dataset,
    index: &SegmentIndex<'_>,
    i: RecordId,
    k: u32,
    rows: &mut Vec<u32>,
    cand: &mut Vec<RecordId>,
    out: &mut Vec<JoinPair>,
) -> u64 {
    let r = dataset.get(i);
    let lr = r.len();
    cand.clear();
    for l in lr.saturating_sub(k as usize)..=lr {
        let delta = (lr - l) as isize;
        for (seg, (p, li)) in even_partitions(l, k).iter().copied().enumerate() {
            // Substring selection (the multi-match-aware position
            // filter): if ed ≤ k, some error-free segment `seg` of the
            // shorter string has at most `seg` edits before it and at
            // most `k − seg` after, so its copy inside `r` starts
            // within both windows below.
            let p = p as isize;
            let seg_i = seg as isize;
            let slack = k as isize - seg_i;
            let lo = (p - seg_i).max(p + delta - slack).max(0);
            let hi = (p + seg_i).min(p + delta + slack).min((lr - li) as isize);
            let mut pos = lo;
            while pos <= hi {
                let sub = &r[pos as usize..pos as usize + li];
                if let Some(ids) = index.buckets.get(&(l as u32, seg as u32, sub)) {
                    if l < lr {
                        cand.extend_from_slice(ids);
                    } else {
                        // Same length: ids are in ascending order, keep
                        // the prefix below the probe so each pair is
                        // counted by its larger id only.
                        let cut = ids.partition_point(|&j| j < i);
                        cand.extend_from_slice(&ids[..cut]);
                    }
                }
                pos += 1;
            }
        }
    }
    cand.sort_unstable();
    cand.dedup();
    for &j in cand.iter() {
        if let Some(d) = ed_within_banded_with(rows, dataset.get(j), r, k) {
            out.push(JoinPair {
                left: i.min(j),
                right: i.max(j),
                distance: d,
            });
        }
    }
    cand.len() as u64
}

/// How many contiguous probe/verify chunks to fan a join out into: a
/// few chunks per worker so the dynamic executors can balance, one for
/// the sequential path.
fn job_count(strategy: Strategy, n: usize) -> usize {
    let threads = match strategy {
        Strategy::Sequential => 1,
        Strategy::ThreadPerQuery => 8,
        Strategy::FixedPool { threads } | Strategy::WorkQueue { threads } => threads,
        Strategy::Adaptive { max_threads } => max_threads,
    };
    (threads * 4).clamp(1, n.max(1))
}

/// Exact PASS-JOIN under the given executor strategy, with its
/// [`JoinStats`].
pub fn pass_join_with_stats(
    dataset: &Dataset,
    k: u32,
    strategy: Strategy,
) -> (Vec<JoinPair>, JoinStats) {
    let index = build_segment_index(dataset, k);
    let n = dataset.len();
    // Fan the probe side out in contiguous id ranges (§11's data-chunk
    // scheduling — one level of parallelism, no nested pools); each
    // range keeps its DP rows and candidate scratch across records.
    let jobs = chunk_ranges(n, job_count(strategy, n));
    let jobs = &jobs;
    let index = &index;
    let chunks: Vec<(Vec<JoinPair>, u64)> = run_queries(strategy, jobs.len(), |c| {
        let mut rows = Vec::new();
        let mut cand = Vec::new();
        let mut out = Vec::new();
        let mut verified = 0u64;
        for i in jobs[c].clone() {
            verified += probe_record(dataset, index, i as RecordId, k, &mut rows, &mut cand, &mut out);
        }
        (out, verified)
    });
    let mut pairs = Vec::new();
    let mut verified = 0u64;
    for (chunk, v) in chunks {
        pairs.extend(chunk);
        verified += v;
    }
    let pairs = normalize(pairs);
    let stats = JoinStats {
        pairs_emitted: pairs.len() as u64,
        candidates_verified: verified,
        seg_buckets: index.buckets.len() as u64,
        seg_postings: index.postings,
        fallback_records: 0,
    };
    (pairs, stats)
}

/// Exact PASS-JOIN, sequential.
///
/// # Examples
///
/// ```
/// use simsearch_core::passjoin::pass_join;
/// use simsearch_data::Dataset;
///
/// let ds = Dataset::from_records(["Bonn", "Born", "Ulm"]);
/// let pairs = pass_join(&ds, 1);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].left, pairs[0].right, pairs[0].distance), (0, 1, 1));
/// ```
pub fn pass_join(dataset: &Dataset, k: u32) -> Vec<JoinPair> {
    pass_join_with_stats(dataset, k, Strategy::Sequential).0
}

/// [`pass_join`] under an executor strategy.
pub fn parallel_pass_join(dataset: &Dataset, k: u32, strategy: Strategy) -> Vec<JoinPair> {
    pass_join_with_stats(dataset, k, strategy).0
}

/// Tuning for the MinJoin-style content-defined partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinJoinConfig {
    /// Width of the q-grams hashed at every position.
    pub q: usize,
    /// Local-minimum window radius: a position anchors a boundary iff
    /// its q-gram hash is strictly smaller than every other hash within
    /// `w` positions, so consecutive anchors are more than `w` apart.
    pub w: usize,
    /// Hash seed. Partitions are a deterministic function of
    /// `(bytes, q, w, seed)`.
    pub seed: u64,
}

impl Default for MinJoinConfig {
    fn default() -> Self {
        Self {
            q: 3,
            w: 8,
            seed: 0x4D49_4E4A, // "MINJ"
        }
    }
}

/// Mixes one q-gram with the seed (splitmix64-style finalizer steps).
fn gram_hash(gram: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &b in gram {
        h ^= u64::from(b);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h ^= h >> 31;
    h
}

/// Content-defined partition of one record under MinJoin's local-minima
/// rule. Boundaries sit at positions whose q-gram hash is a strict
/// local minimum over a `±w` window of positions that all carry a full
/// q-gram — the decision looks only at `record[p−w .. p+w+q]`, so a
/// substring shared by two records (deep enough inside both) anchors
/// identical boundaries in each. Returns `(start, len)` per segment;
/// every record has at least one segment and the segments tile the
/// record.
pub fn min_join_partitions(record: &[u8], cfg: MinJoinConfig) -> Vec<(usize, usize)> {
    let len = record.len();
    let mut boundaries = vec![0usize];
    if len >= 2 * cfg.w + cfg.q {
        let hashes: Vec<u64> = (0..=len - cfg.q)
            .map(|p| gram_hash(&record[p..p + cfg.q], cfg.seed))
            .collect();
        for p in cfg.w..=len - cfg.w - cfg.q {
            let h = hashes[p];
            let window = &hashes[p - cfg.w..=p + cfg.w];
            if window
                .iter()
                .enumerate()
                .all(|(off, &other)| off == cfg.w || h < other)
            {
                boundaries.push(p);
            }
        }
    }
    boundaries.push(len);
    boundaries
        .windows(2)
        .map(|b| (b[0], b[1] - b[0]))
        .collect()
}

/// Segments a partitioning must carry before the pigeonhole argument
/// holds for `k` edits: one edit at position `x` can only disturb
/// segments whose anchors look at bytes near `x` — anchors are more
/// than `w` apart, so at most `2(w+q)/(w+1) + 2` segments per edit
/// (+1 here for safety margin). Records below the bound join through
/// the exact length-window fallback instead.
fn min_segments_for(k: u32, cfg: MinJoinConfig) -> usize {
    let per_edit = 2 * (cfg.w + cfg.q) / (cfg.w + 1) + 3;
    per_edit * k as usize + 1
}

/// MinJoin-style self-join under the given executor strategy and
/// config, with its [`JoinStats`].
///
/// Exactness: a record whose partitioning carries at least
/// [`min_segments_for`] segments keeps one segment fully intact —
/// content *and* both anchors — under any `k` edits, and that segment
/// reappears in the partner record at a start position shifted by at
/// most `k`; such pairs are caught by the shared-segment buckets.
/// Records with fewer segments go to a fallback pool joined by the
/// length-window scan against **all** records, which covers every pair
/// with at least one short side. The union is exactly the join result,
/// verified pair-by-pair with the banded kernel.
pub fn min_join_with_stats(
    dataset: &Dataset,
    k: u32,
    strategy: Strategy,
    cfg: MinJoinConfig,
) -> (Vec<JoinPair>, JoinStats) {
    let n = dataset.len();
    let min_segments = min_segments_for(k, cfg);
    // Bucket every sufficiently-segmented record by segment content
    // (with its start position); the rest pool up for the fallback.
    let mut buckets: HashMap<&[u8], Vec<(RecordId, u32)>> = HashMap::new();
    let mut postings = 0u64;
    let mut in_pool = vec![false; n];
    let mut pool = Vec::new();
    for (id, record) in dataset.iter() {
        let parts = min_join_partitions(record, cfg);
        if parts.len() < min_segments {
            in_pool[id as usize] = true;
            pool.push(id);
            continue;
        }
        for (start, len) in parts {
            buckets
                .entry(&record[start..start + len])
                .or_default()
                .push((id, start as u32));
            postings += 1;
        }
    }
    let mut cand: Vec<(RecordId, RecordId)> = Vec::new();
    // Indexed × indexed: any two records sharing a segment's bytes
    // within the position and length filters.
    for entries in buckets.values() {
        for (ai, &(a, pa)) in entries.iter().enumerate() {
            let la = dataset.record_len(a);
            for &(b, pb) in &entries[ai + 1..] {
                if a == b {
                    continue; // a record can repeat a segment's bytes
                }
                if la.abs_diff(dataset.record_len(b)) > k as usize
                    || pa.abs_diff(pb) > k
                {
                    continue;
                }
                cand.push((a.min(b), a.max(b)));
            }
        }
    }
    // Pool × everyone: the sorted length window covers every pair with
    // a short side, exactly like `sorted_join` restricted to the pool.
    let order = length_order(dataset);
    for &p in &pool {
        let lp = dataset.record_len(p);
        let from = order.partition_point(|&j| {
            dataset.record_len(j) < lp.saturating_sub(k as usize)
        });
        for &j in &order[from..] {
            if dataset.record_len(j) > lp + k as usize {
                break;
            }
            // Pool–pool pairs would be generated from both ends; keep
            // the one seen from the smaller id.
            if j == p || (in_pool[j as usize] && j < p) {
                continue;
            }
            cand.push((p.min(j), p.max(j)));
        }
    }
    cand.sort_unstable();
    cand.dedup();
    // Verify in parallel over contiguous candidate chunks.
    let jobs = chunk_ranges(cand.len(), job_count(strategy, cand.len()));
    let jobs = &jobs;
    let cand = &cand;
    let chunks: Vec<Vec<JoinPair>> = run_queries(strategy, jobs.len(), |c| {
        let mut rows = Vec::new();
        let mut out = Vec::new();
        for idx in jobs[c].clone() {
            let (i, j) = cand[idx];
            let (a, b) = (dataset.get(i), dataset.get(j));
            let (x, y) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if let Some(d) = ed_within_banded_with(&mut rows, x, y, k) {
                out.push(JoinPair {
                    left: i,
                    right: j,
                    distance: d,
                });
            }
        }
        out
    });
    let pairs = normalize(chunks.into_iter().flatten().collect());
    let stats = JoinStats {
        pairs_emitted: pairs.len() as u64,
        candidates_verified: cand.len() as u64,
        seg_buckets: buckets.len() as u64,
        seg_postings: postings,
        fallback_records: pool.len() as u64,
    };
    (pairs, stats)
}

/// MinJoin-style self-join, sequential, default config.
pub fn min_join(dataset: &Dataset, k: u32) -> Vec<JoinPair> {
    min_join_with_stats(dataset, k, Strategy::Sequential, MinJoinConfig::default()).0
}

/// [`min_join`] under an executor strategy.
pub fn parallel_min_join(dataset: &Dataset, k: u32, strategy: Strategy) -> Vec<JoinPair> {
    min_join_with_stats(dataset, k, strategy, MinJoinConfig::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::nested_loop_join;

    fn sample() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Born", "Ulm", "Ulmen", "Köln", "Bern",
        ])
    }

    #[test]
    fn even_partitions_tile_the_string() {
        for len in 0..40 {
            for k in 0..6 {
                let parts = even_partitions(len, k);
                assert_eq!(parts.len(), k as usize + 1);
                let mut cursor = 0;
                for (start, seg) in &parts {
                    assert_eq!(*start, cursor);
                    cursor += seg;
                }
                assert_eq!(cursor, len);
                let floor = len / (k as usize + 1);
                assert!(parts.iter().all(|&(_, s)| s == floor || s == floor + 1));
            }
        }
    }

    #[test]
    fn partition_joins_agree_with_nested_loop_on_sample() {
        let ds = sample();
        for k in 0..4 {
            let reference = nested_loop_join(&ds, k);
            assert_eq!(pass_join(&ds, k), reference, "pass, k={k}");
            assert_eq!(min_join(&ds, k), reference, "min, k={k}");
            assert_eq!(
                parallel_pass_join(&ds, k, Strategy::FixedPool { threads: 3 }),
                reference,
                "parallel pass, k={k}"
            );
            assert_eq!(
                parallel_min_join(&ds, k, Strategy::WorkQueue { threads: 2 }),
                reference,
                "parallel min, k={k}"
            );
        }
    }

    /// Exhaustive cross-check on a dense space of tiny strings, where
    /// every edge of the substring-selection windows gets exercised:
    /// all strings over {a, b} up to length 5, k up to 3.
    #[test]
    fn pass_join_is_exact_on_the_dense_binary_cube() {
        let mut records: Vec<String> = vec![String::new()];
        let mut frontier = vec![String::new()];
        for _ in 0..5 {
            let mut next = Vec::new();
            for s in &frontier {
                for c in ['a', 'b'] {
                    let mut t = s.clone();
                    t.push(c);
                    next.push(t);
                }
            }
            records.extend(next.iter().cloned());
            frontier = next;
        }
        let ds = Dataset::from_records(records.iter().map(|s| s.as_str()));
        for k in 0..4 {
            let reference = nested_loop_join(&ds, k);
            assert_eq!(pass_join(&ds, k), reference, "pass, k={k}");
            assert_eq!(min_join(&ds, k), reference, "min, k={k}");
        }
    }

    #[test]
    fn stats_account_for_the_run() {
        let ds = sample();
        let (pairs, stats) = pass_join_with_stats(&ds, 1, Strategy::Sequential);
        assert_eq!(stats.pairs_emitted, pairs.len() as u64);
        assert!(stats.candidates_verified >= stats.pairs_emitted);
        // 8 records × 2 segments each.
        assert_eq!(stats.seg_postings, 16);
        assert!(stats.seg_buckets > 0 && stats.seg_buckets <= 16);
        assert_eq!(stats.fallback_records, 0);

        let (pairs, stats) =
            min_join_with_stats(&ds, 1, Strategy::Sequential, MinJoinConfig::default());
        assert_eq!(stats.pairs_emitted, pairs.len() as u64);
        // City-length strings are all shorter than the segment floor:
        // the whole sample joins through the fallback pool.
        assert_eq!(stats.fallback_records, 8);
    }

    #[test]
    fn min_join_partitions_are_deterministic_and_tile() {
        let cfg = MinJoinConfig::default();
        let record = b"the quick brown fox jumps over the lazy dog again and again";
        let a = min_join_partitions(record, cfg);
        let b = min_join_partitions(record, cfg);
        assert_eq!(a, b);
        assert!(a.len() > 1, "a 60-byte record should anchor somewhere");
        let mut cursor = 0;
        for (start, len) in &a {
            assert_eq!(*start, cursor);
            cursor += len;
        }
        assert_eq!(cursor, record.len());
        // A different seed moves the anchors.
        let other = min_join_partitions(
            record,
            MinJoinConfig {
                seed: 1,
                ..MinJoinConfig::default()
            },
        );
        assert_ne!(a, other);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pass_join(&Dataset::new(), 2).is_empty());
        assert!(min_join(&Dataset::new(), 2).is_empty());
        let one = Dataset::from_records(["solo"]);
        assert!(pass_join(&one, 2).is_empty());
        assert!(min_join(&one, 2).is_empty());
        // k beyond every length: all pairs match.
        let tiny = Dataset::from_records(["a", "bc", ""]);
        let reference = nested_loop_join(&tiny, 9);
        assert_eq!(reference.len(), 3);
        assert_eq!(pass_join(&tiny, 9), reference);
        assert_eq!(min_join(&tiny, 9), reference);
    }
}
