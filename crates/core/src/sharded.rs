//! Sharded execution: partition the dataset, search every shard, merge.
//!
//! The paper's scan-vs-index crossover (§3–§4) is a property of *one*
//! arena; production datasets outgrow one arena. This module partitions
//! a dataset into `S` shards ([`ShardBy::Len`] length bands or
//! [`ShardBy::Hash`] content hashing), gives each shard its own
//! [`Backend`] — a [`ShardAutoBackend`], a planner-driven router that
//! *owns* its shard and calibrates against that shard's own
//! [`StatsSnapshot`] — fans each query out across shards via
//! `simsearch_parallel`, and unions the per-shard [`MatchSet`]s with a
//! k-way merge ([`merge_match_sets`]) after remapping shard-local ids
//! back to global ids ([`remap_to_global`]).
//!
//! Per-shard planners are the point: a shard of short city names and a
//! shard of long DNA reads route differently, which a single global
//! decision table cannot express. The partition invariant that makes
//! the merge cheap: every shard's global-id table is strictly
//! increasing, so a remapped shard-local result is already a sorted run
//! and the union is a classic k-way merge of disjoint sorted lists.

use crate::backend::{AutoBackend, Backend, BackendDiag, ObservationGrid, PlanReport};
use crate::lsm::{LiveEngine, LiveStats, LsmConfig, MutableBackend};
use crate::planner::{
    static_cost, BackendChoice, Observation, Planner, QueryClass, MIN_CELL_OBSERVATIONS,
};
use simsearch_data::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};
use simsearch_data::{
    Alphabet, Dataset, Match, MatchSet, RecordId, SortedView, StatsSnapshot, Workload,
};
use simsearch_filters::{FilterChain, FrequencyFilter, LengthFilter};
use simsearch_index::{BkTree, LengthBuckets, QgramIndex, RadixTrie, Trie};
use simsearch_parallel::{auto_strategy, run_queries, Strategy};
use simsearch_scan::{v7_search_view, v8_search_view, SequentialScan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// How records are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardBy {
    /// Contiguous length bands: records sorted by `(length, id)` and cut
    /// into `S` equal chunks, so each shard holds a narrow length range
    /// and its planner sees a genuinely different [`StatsSnapshot`].
    Len,
    /// FNV-1a content hash modulo `S`: statistically uniform shards with
    /// near-identical snapshots (the load-balancing choice).
    Hash,
}

impl ShardBy {
    /// The CLI spelling (`--shard-by len|hash`).
    pub fn name(self) -> &'static str {
        match self {
            ShardBy::Len => "len",
            ShardBy::Hash => "hash",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "len" => Some(ShardBy::Len),
            "hash" => Some(ShardBy::Hash),
            _ => None,
        }
    }
}

/// FNV-1a, the workspace's deterministic content hash for partitioning.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The mutation router's shard assignment: a pure function of the
/// record bytes and the shard count (FNV-1a hash modulo `shards`), so
/// routing is stable across restarts and identical for the seed load
/// and every later insert. This is the routing contract the testkit
/// property suite pins down.
pub fn route_record(record: &[u8], shards: usize) -> usize {
    (fnv1a(record) % shards.max(1) as u64) as usize
}

/// Assigns every record of `dataset` to exactly one of `shards` shards.
///
/// Returns one id list per shard (possibly empty when `shards >
/// dataset.len()`). Invariants the merge relies on, property-tested in
/// `crates/testkit`: the lists are disjoint, cover every id, and each
/// is strictly increasing — so remapping a shard-local result through
/// its list preserves id order.
pub fn partition_ids(dataset: &Dataset, shards: usize, by: ShardBy) -> Vec<Vec<RecordId>> {
    let s = shards.max(1);
    let n = dataset.len();
    let mut out: Vec<Vec<RecordId>> = vec![Vec::new(); s];
    match by {
        ShardBy::Len => {
            let mut ids: Vec<RecordId> = (0..n as u32).collect();
            ids.sort_by_key(|&id| (dataset.record_len(id), id));
            for (i, bucket) in out.iter_mut().enumerate() {
                let mut chunk = ids[i * n / s..(i + 1) * n / s].to_vec();
                chunk.sort_unstable();
                *bucket = chunk;
            }
        }
        ShardBy::Hash => {
            for id in 0..n as u32 {
                out[(fnv1a(dataset.get(id)) % s as u64) as usize].push(id);
            }
        }
    }
    out
}

/// Copies the records named by `ids` (in order) into an owned sub-dataset
/// with local ids `0..ids.len()`.
pub fn materialize(dataset: &Dataset, ids: &[RecordId]) -> Dataset {
    let total: usize = ids.iter().map(|&id| dataset.record_len(id)).sum();
    let mut out = Dataset::with_capacity(ids.len(), total);
    for &id in ids {
        out.push(dataset.get(id));
    }
    out
}

/// Remaps a shard-local match set to global ids through the shard's id
/// table (`local id i` ↔ `globals[i]`, a bijection onto the shard's
/// slice of the global id space).
pub fn remap_to_global(local: &MatchSet, globals: &[RecordId]) -> MatchSet {
    MatchSet::from_unsorted(
        local
            .iter()
            .map(|m| Match::new(globals[m.id as usize], m.distance))
            .collect(),
    )
}

/// K-way merge of per-shard match sets already remapped to global ids.
///
/// Each input is sorted by id (a [`MatchSet`] invariant); the output is
/// their sorted, deduplicated union — equal to
/// [`MatchSet::from_unsorted`] of the concatenation when the inputs are
/// disjoint, and keeping the *minimum* distance per id when partitions
/// overlap (the heap yields the smaller distance first).
pub fn merge_match_sets(parts: &[MatchSet]) -> MatchSet {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(Match, usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; parts.len()];
    for (i, p) in parts.iter().enumerate() {
        if let Some(&m) = p.matches().first() {
            heap.push(Reverse((m, i)));
            cursors[i] = 1;
        }
    }
    let mut out: Vec<Match> = Vec::new();
    while let Some(Reverse((m, i))) = heap.pop() {
        if out.last().map(|last| last.id) != Some(m.id) {
            out.push(m);
        }
        if let Some(&next) = parts[i].matches().get(cursors[i]) {
            heap.push(Reverse((next, i)));
            cursors[i] += 1;
        }
    }
    MatchSet::from_unsorted(out)
}

/// One candidate execution arm over an *owned* shard dataset.
///
/// Unlike the borrowing arms in [`crate::backend`], every variant here
/// either owns its structure outright or takes the dataset as a
/// call-time argument — which is what lets a shard own its dataset and
/// its backend in one struct without self-reference.
enum ShardArm {
    /// Flat scan through the unified filter chain.
    ScanFlat(FilterChain),
    /// V7 sorted-prefix scan over an owned sorted view.
    ScanSorted(SortedView),
    /// V8 bit-parallel sweep over an owned sorted view.
    ScanBitParallel(SortedView),
    /// Uncompressed prefix tree (modern pruning).
    Trie(Trie),
    /// Compressed (radix) tree (modern pruning).
    Radix(RadixTrie),
    /// Inverted q-gram index (q = 2, the planner's choice).
    Qgram(QgramIndex),
    /// Length-bucketed scan.
    Buckets(LengthBuckets),
    /// Burkhard–Keller metric tree.
    Bk(BkTree),
}

impl ShardArm {
    fn build(dataset: &Dataset, choice: BackendChoice) -> Self {
        match choice {
            BackendChoice::ScanFlat => {
                let dna = Alphabet::dna();
                let tracked = if dataset.records().all(|r| dna.covers(r)) {
                    DNA_SYMBOLS
                } else {
                    VOWEL_SYMBOLS
                };
                ShardArm::ScanFlat(
                    FilterChain::new()
                        .push(LengthFilter::build(dataset))
                        .push(FrequencyFilter::build(dataset, tracked)),
                )
            }
            BackendChoice::ScanSorted => ShardArm::ScanSorted(SortedView::build(dataset)),
            BackendChoice::ScanBitParallel => {
                ShardArm::ScanBitParallel(SortedView::build(dataset))
            }
            BackendChoice::Trie => ShardArm::Trie(simsearch_index::trie::build(dataset)),
            BackendChoice::Radix => ShardArm::Radix(simsearch_index::radix::build(dataset)),
            BackendChoice::Qgram => ShardArm::Qgram(QgramIndex::build(dataset, 2)),
            BackendChoice::Buckets => ShardArm::Buckets(LengthBuckets::build(dataset)),
            BackendChoice::BkTree => ShardArm::Bk(BkTree::build(dataset)),
        }
    }

    fn search_counting(&self, dataset: &Dataset, query: &[u8], k: u32) -> (MatchSet, u64) {
        match self {
            // `SequentialScan::new` allocates nothing (lazy internals),
            // and `search_filtered` touches only the borrowed dataset —
            // constructing one per call is free.
            ShardArm::ScanFlat(chain) => (
                SequentialScan::new(dataset).search_filtered(chain, query, k),
                0,
            ),
            ShardArm::ScanSorted(sv) => v7_search_view(sv, query, k),
            ShardArm::ScanBitParallel(sv) => v8_search_view(sv, query, k),
            ShardArm::Trie(t) => (t.search(query, k), 0),
            ShardArm::Radix(r) => (r.search(query, k), 0),
            ShardArm::Qgram(q) => (q.search(dataset, query, k), 0),
            ShardArm::Buckets(b) => (b.search(dataset, query, k), 0),
            ShardArm::Bk(t) => (t.search(dataset, query, k), 0),
        }
    }
}

/// A planner-driven backend that *owns* its (shard) dataset.
///
/// The sharded composite needs `Box<dyn Backend>` per shard, and the
/// borrowing [`AutoBackend`] cannot outlive a dataset owned by a
/// sibling field — so this is its owned twin: same candidate set, same
/// decision table, same calibration protocol, but every arm is an
/// owned [`ShardArm`]. Also usable stand-alone with a single fixed
/// candidate ([`ShardAutoBackend::fixed`]) to pin a shard to one arm.
/// Like [`AutoBackend`], the planner lives behind an `RwLock<Arc<..>>`
/// so a replan tick can swap each shard's decision table independently
/// while its queries are in flight, and every routed probe is timed
/// into the shard's own [`ObservationGrid`] — a memtable-heavy shard
/// and a freshly-flushed neighbour accumulate different evidence and
/// replan to different tables.
pub struct ShardAutoBackend {
    dataset: Dataset,
    planner: RwLock<Arc<Planner>>,
    plan_epoch: AtomicU64,
    grid: ObservationGrid,
    arms: [OnceLock<ShardArm>; BackendChoice::COUNT],
    counters: [AtomicU64; BackendChoice::COUNT],
}

impl ShardAutoBackend {
    /// Builds with purely static (deterministic) planning over
    /// [`AutoBackend::DEFAULT_CANDIDATES`].
    pub fn new(dataset: Dataset) -> Self {
        let snapshot = StatsSnapshot::compute(&dataset);
        let planner = Planner::new(snapshot, &AutoBackend::DEFAULT_CANDIDATES);
        Self::with_planner(dataset, planner)
    }

    /// Builds with a single fixed arm: the planner has one candidate,
    /// so every query routes to `choice`.
    pub fn fixed(dataset: Dataset, choice: BackendChoice) -> Self {
        let snapshot = StatsSnapshot::compute(&dataset);
        let planner = Planner::new(snapshot, &[choice]);
        Self::with_planner(dataset, planner)
    }

    /// Builds and calibrates against `probe` with the same protocol as
    /// [`AutoBackend::calibrated`]: one untimed warm pass per arm, then
    /// two timed per-query passes feeding [`Observation`]s grouped by
    /// query class. An empty probe yields static planning.
    pub fn calibrated(dataset: Dataset, probe: &Workload) -> Self {
        let auto = Self::new(dataset);
        if probe.queries.is_empty() {
            return auto;
        }
        let mut observations = Vec::new();
        for &choice in &AutoBackend::DEFAULT_CANDIDATES {
            let arm = auto.arm(choice);
            for q in &probe.queries {
                let _ = arm.search_counting(&auto.dataset, &q.text, q.threshold);
            }
            for _ in 0..2 {
                for q in &probe.queries {
                    let started = std::time::Instant::now();
                    let _ = arm.search_counting(&auto.dataset, &q.text, q.threshold);
                    observations.push(Observation {
                        choice,
                        query_len: q.text.len(),
                        k: q.threshold,
                        nanos: started.elapsed().as_nanos() as f64,
                    });
                }
            }
        }
        let calibrated = Planner::with_observations(
            auto.planner().snapshot().clone(),
            &AutoBackend::DEFAULT_CANDIDATES,
            &observations,
        );
        // Build-time calibration is the epoch-0 baseline, not a replan.
        *auto.planner.write().expect("planner lock") = Arc::new(calibrated);
        for counter in &auto.counters {
            counter.store(0, Ordering::Relaxed);
        }
        auto
    }

    fn with_planner(dataset: Dataset, planner: Planner) -> Self {
        Self {
            dataset,
            planner: RwLock::new(Arc::new(planner)),
            plan_epoch: AtomicU64::new(0),
            grid: ObservationGrid::new(),
            arms: std::array::from_fn(|_| OnceLock::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The shard's current planner (per-shard `explain`) — a shared
    /// handle; replans swap the slot, never mutate behind it.
    pub fn planner(&self) -> Arc<Planner> {
        self.planner.read().expect("planner lock").clone()
    }

    /// Decision-table swaps since build (0 until the first replan).
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch.load(Ordering::Relaxed)
    }

    /// The shard's live latency registry.
    pub fn observations(&self) -> &ObservationGrid {
        &self.grid
    }

    /// Atomically installs a replacement planner and bumps the epoch;
    /// refuses a different candidate set (counters and metrics label
    /// sets are fixed at build). Same contract as
    /// [`AutoBackend::set_planner`].
    pub fn set_planner(&self, planner: Planner) -> bool {
        let mut slot = self.planner.write().expect("planner lock");
        if planner.candidates() != slot.candidates() {
            return false;
        }
        *slot = Arc::new(planner);
        drop(slot);
        self.plan_epoch.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// One self-tuning tick over *this shard's* observations — the
    /// per-shard twin of [`AutoBackend::replan`]. Returns `false`
    /// without swapping when no cell has reached
    /// [`MIN_CELL_OBSERVATIONS`].
    pub fn replan(&self) -> bool {
        let current = self.planner();
        let next = Planner::with_class_samples(
            current.snapshot().clone(),
            current.candidates(),
            &self.grid.class_samples(),
            &self.grid.topk_samples(),
            MIN_CELL_OBSERVATIONS,
        );
        if !next.is_calibrated() {
            return false;
        }
        self.set_planner(next)
    }

    /// The owned shard dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn arm(&self, choice: BackendChoice) -> &ShardArm {
        self.arms[choice.index()].get_or_init(|| ShardArm::build(&self.dataset, choice))
    }

    fn counts_vec(&self) -> Vec<(&'static str, u64)> {
        self.planner()
            .candidates()
            .iter()
            .map(|&c| (c.name(), self.counters[c.index()].load(Ordering::Relaxed)))
            .collect()
    }
}

impl Backend for ShardAutoBackend {
    fn name(&self) -> String {
        let planner = self.planner();
        if let [only] = planner.candidates() {
            format!("shard[{}]", only.name())
        } else if planner.is_calibrated() {
            "shard-auto[calibrated]".into()
        } else {
            "shard-auto[static]".into()
        }
    }

    fn prepare(&self) {
        let mut chosen: Vec<BackendChoice> =
            self.planner().decisions().iter().map(|d| d.chosen).collect();
        chosen.sort_by_key(|c| c.index());
        chosen.dedup();
        for choice in chosen {
            self.arm(choice);
        }
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_counting(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        // Copy the decision out under the read lock (never held across
        // the arm probe — a replan swap must not wait on a slow query).
        let (chosen, class, predicted, pruned) = {
            let planner = self.planner.read().expect("planner lock");
            let chosen = planner.decide(query.len(), k).chosen;
            let snapshot = planner.snapshot();
            // Shard-level length prune: ed(q, x) ≥ ||q| − |x||, so when
            // the shard's entire length band lies outside |q| ± k no
            // record can match and the arm probe is skipped. Under
            // `ShardBy::Len` the bands are narrow, which turns a
            // fan-out into a near-miss for most shards; under
            // `ShardBy::Hash` the band is the full length range and
            // this never fires. The routing counter below still ticks —
            // the planner decided, the length bound answered.
            let (ql, kk) = (query.len() as u64, u64::from(k));
            let pruned = snapshot.records == 0
                || ql + kk < u64::from(snapshot.min_len)
                || ql.saturating_sub(kk) > u64::from(snapshot.max_len);
            (
                chosen,
                QueryClass::of(snapshot, query.len(), k),
                static_cost(snapshot, chosen, query.len(), k),
                pruned,
            )
        };
        self.counters[chosen.index()].fetch_add(1, Ordering::Relaxed);
        if pruned {
            // The arm never ran, so nothing is recorded: a pruned query
            // says nothing about the arm's cost curve, and folding its
            // ~0 ns in would drag the shard's multipliers toward zero.
            return (MatchSet::default(), 0);
        }
        let started = Instant::now();
        let answer = self.arm(chosen).search_counting(&self.dataset, query, k);
        self.grid
            .record(class, chosen, started.elapsed().as_nanos() as u64, predicted);
        answer
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        self.planner()
            .candidates()
            .iter()
            .map(|&c| static_cost(snapshot, c, query_len, k))
            .fold(f64::INFINITY, f64::min)
    }

    fn diag(&self) -> BackendDiag {
        let planner = self.planner();
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: vec!["length", "frequency"],
            plan: Some(PlanReport {
                snapshot: planner.snapshot().clone(),
                decisions: planner.decisions().to_vec(),
                counts: self.counts_vec(),
                calibrated: planner.is_calibrated(),
            }),
        }
    }

    fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        Some(self.counts_vec())
    }
}

/// How a shard's result ids map back to the global id space.
enum ShardIds {
    /// Frozen shard: local id `i` ↔ `table[i]`, the strictly increasing
    /// table [`partition_ids`] produced.
    Table(Vec<RecordId>),
    /// Live shard: the backend already answers in global ids (its
    /// [`LiveEngine`] was seeded with this shard's slice of the global
    /// space and every insert carries a centrally allocated id), so the
    /// remap is the identity.
    Global,
}

/// One shard: an owned backend plus the mapping from its local ids back
/// to global ids, the mutation handle when the shard is live, and
/// lifetime counters for serving metrics.
struct Shard {
    backend: Box<dyn Backend>,
    ids: ShardIds,
    /// The shard's engine as a mutation target; `None` for frozen
    /// shards. Shares the allocation with `backend`.
    live: Option<Arc<LiveEngine>>,
    /// The shard's planner-driven backend as a replan target; `None`
    /// for live shards (which replan through their [`LiveEngine`]).
    /// Shares the allocation with `backend`.
    auto: Option<Arc<ShardAutoBackend>>,
    queries: AtomicU64,
    matches: AtomicU64,
}

impl Shard {
    /// Remaps a shard-local result to global ids. The output is sorted
    /// by id either way: frozen tables are strictly increasing, and
    /// live shards answer in global ids already.
    fn remap(&self, local: &MatchSet) -> MatchSet {
        match &self.ids {
            ShardIds::Table(globals) => remap_to_global(local, globals),
            ShardIds::Global => local.clone(),
        }
    }

    /// Records this shard currently holds (live count for live shards).
    fn records(&self) -> usize {
        match (&self.ids, &self.live) {
            (ShardIds::Table(globals), _) => globals.len(),
            (ShardIds::Global, Some(engine)) => engine.stats().live_records,
            (ShardIds::Global, None) => 0,
        }
    }
}

/// Per-shard lifetime statistics, surfaced through
/// [`Backend::shard_stats`] into the serving layer's `STATS` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Records this shard holds (the live count for live shards).
    pub records: usize,
    /// Queries fanned to this shard so far.
    pub queries: u64,
    /// Total matches this shard has returned so far.
    pub matches: u64,
    /// `(arm name, queries routed)` for planner-driven shard backends.
    pub plan_counts: Option<Vec<(&'static str, u64)>>,
    /// LSM gauges when the shard is a live engine; `None` when frozen.
    pub live: Option<LiveStats>,
}

/// Central id allocation and delete routing for a live composite.
///
/// Inserts take this lock to (a) draw the next id from the one global,
/// dense, never-reused space and (b) record the owning shard, and they
/// hold it across the shard append so each shard's memtable stays in
/// global-id order. Reads and compaction never touch this lock — shard
/// engines compact behind their own per-shard gates, so there is no
/// global compaction lock.
struct MutationRouter {
    cfg: LsmConfig,
    state: Mutex<RouterState>,
}

struct RouterState {
    /// Next global id to assign (seed records took `0..next_id` first).
    next_id: RecordId,
    /// `owner[id]` = index of the shard physically holding `id`.
    /// Dense — ids are never reused, so this only grows.
    owner: Vec<u8>,
}

/// The sharded composite backend: `S` shards, each with its own
/// [`Backend`], fan-out per query, k-way union of the results. Built
/// with [`ShardedBackend::live`], the shards are [`LiveEngine`]s and
/// the composite additionally implements [`MutableBackend`], routing
/// each insert by content hash and each delete to the owning shard.
pub struct ShardedBackend {
    shards: Vec<Shard>,
    by: ShardBy,
    threads: usize,
    /// Present only for live composites.
    router: Option<MutationRouter>,
}

impl ShardedBackend {
    /// Partitions `dataset` and gives every shard a statically planned
    /// [`ShardAutoBackend`] (deterministic; what
    /// [`crate::engine::build_backend`] uses).
    pub fn build(dataset: &Dataset, shards: usize, by: ShardBy, threads: usize) -> Self {
        Self::assemble(dataset, shards, by, threads, ShardAutoBackend::new)
    }

    /// Like [`ShardedBackend::build`], but each shard calibrates its
    /// own planner against a probe drawn from that shard's records
    /// ([`AutoBackend::default_probe`]), so routing reflects per-shard
    /// measured costs (the serving daemon's choice).
    pub fn calibrated(dataset: &Dataset, shards: usize, by: ShardBy, threads: usize) -> Self {
        Self::assemble(dataset, shards, by, threads, |sub| {
            let probe = AutoBackend::default_probe(&sub);
            ShardAutoBackend::calibrated(sub, &probe)
        })
    }

    /// Like [`ShardedBackend::calibrated`], but every shard calibrates
    /// against the *same* caller-supplied probe workload — the choice
    /// when the real workload is in hand (the CLI and the benches),
    /// mirroring [`crate::SearchEngine::build_auto`] with a probe. A
    /// synthetic per-shard probe measures each arm on queries drawn
    /// from the shard's own records; real queries can have a different
    /// length × threshold mix, and the per-class winner differs with
    /// them.
    pub fn calibrated_with(
        dataset: &Dataset,
        shards: usize,
        by: ShardBy,
        threads: usize,
        probe: &Workload,
    ) -> Self {
        Self::assemble(dataset, shards, by, threads, |sub| {
            ShardAutoBackend::calibrated(sub, probe)
        })
    }

    /// Pins every shard to one fixed arm (`choice`).
    pub fn with_fixed_arm(
        dataset: &Dataset,
        shards: usize,
        by: ShardBy,
        threads: usize,
        choice: BackendChoice,
    ) -> Self {
        Self::assemble(dataset, shards, by, threads, move |sub| {
            ShardAutoBackend::fixed(sub, choice)
        })
    }

    fn assemble(
        dataset: &Dataset,
        shards: usize,
        by: ShardBy,
        threads: usize,
        make: impl Fn(Dataset) -> ShardAutoBackend,
    ) -> Self {
        let shards = partition_ids(dataset, shards, by)
            .into_iter()
            .map(|globals| {
                let sub = materialize(dataset, &globals);
                // One allocation, two handles: the erased `Box<dyn
                // Backend>` for the query fan-out and the typed `Arc`
                // the replan tick reaches each shard's planner through.
                let auto = Arc::new(make(sub));
                Shard {
                    backend: Box::new(Arc::clone(&auto)),
                    ids: ShardIds::Table(globals),
                    live: None,
                    auto: Some(auto),
                    queries: AtomicU64::new(0),
                    matches: AtomicU64::new(0),
                }
            })
            .collect();
        Self {
            shards,
            by,
            threads,
            router: None,
        }
    }

    /// Builds a *live* composite: every shard is a [`LiveEngine`]
    /// seeded with its hash-routed slice of `dataset`, and the returned
    /// backend implements [`MutableBackend`] — inserts draw ids from
    /// one global dense space and route by content hash
    /// ([`route_record`]), deletes route to the recorded owning shard.
    ///
    /// Fails fast (instead of degrading deep in the engine) when:
    /// * `cfg.memtable_cap` is 0 — that would flush on every insert;
    /// * `by` is [`ShardBy::Len`] with ≥ 2 shards — length bands shift
    ///   as the dataset grows, so band routing cannot be a stable pure
    ///   function of the record; use `hash` partitioning with live
    ///   shards (a single shard accepts either spelling: routing is
    ///   trivial).
    pub fn live(
        dataset: &Dataset,
        shards: usize,
        by: ShardBy,
        threads: usize,
        cfg: LsmConfig,
    ) -> Result<Self, String> {
        if cfg.memtable_cap == 0 {
            return Err(
                "--memtable-cap needs a positive integer (0 would flush on every insert)".into(),
            );
        }
        let s = shards.max(1);
        if by == ShardBy::Len && s >= 2 {
            return Err(
                "--shard-by len cannot route live inserts: length bands shift as the \
                 dataset grows, so a record's band is not a stable function of its bytes; \
                 use --shard-by hash with --live"
                    .into(),
            );
        }
        if s > 256 {
            return Err(format!(
                "--live supports at most 256 shards (got {s}): the delete router's \
                 owner map stores one byte per record"
            ));
        }
        // Seed partition: the same pure routing function every later
        // insert uses, so a restart re-routes identically.
        let mut parts: Vec<(Dataset, Vec<RecordId>)> =
            (0..s).map(|_| (Dataset::new(), Vec::new())).collect();
        let mut owner = Vec::with_capacity(dataset.len());
        for id in 0..dataset.len() as u32 {
            let record = dataset.get(id);
            let target = route_record(record, s);
            owner.push(target as u8);
            parts[target].0.push(record);
            parts[target].1.push(id);
        }
        let next_id = dataset.len() as u32;
        let shards = parts
            .into_iter()
            .map(|(data, globals)| {
                let engine = Arc::new(LiveEngine::seeded(data, globals, next_id, cfg));
                Shard {
                    backend: Box::new(Arc::clone(&engine)),
                    ids: ShardIds::Global,
                    live: Some(engine),
                    auto: None,
                    queries: AtomicU64::new(0),
                    matches: AtomicU64::new(0),
                }
            })
            .collect();
        Ok(Self {
            shards,
            by,
            threads,
            router: Some(MutationRouter {
                cfg,
                state: Mutex::new(RouterState { next_id, owner }),
            }),
        })
    }

    /// Whether this composite was built with live shards (and therefore
    /// honours the [`MutableBackend`] surface).
    pub fn is_live(&self) -> bool {
        self.router.is_some()
    }

    /// The shard physically holding `id`, when this is a live composite
    /// and the id has been assigned. Diagnostic — the delete path uses
    /// the same map.
    pub fn owner_of(&self, id: RecordId) -> Option<usize> {
        let router = self.router.as_ref()?;
        let state = router.state.lock().expect("router lock");
        state.owner.get(id as usize).map(|&s| s as usize)
    }

    fn router(&self) -> &MutationRouter {
        self.router
            .as_ref()
            .expect("mutation on a frozen ShardedBackend (build it with ShardedBackend::live)")
    }

    fn live_shard(&self, index: usize) -> &LiveEngine {
        self.shards[index]
            .live
            .as_ref()
            .expect("live composites hold only live shards")
    }

    /// One compaction step on one shard, for per-shard compactor
    /// threads: each shard flushes and merges under its own gate, so N
    /// compactors on N shards never serialise against each other (and
    /// never block readers — swaps are atomic under the shard's lock).
    /// Returns whether a step ran. Panics on a frozen composite.
    pub fn compact_shard(&self, index: usize) -> bool {
        self.router();
        self.live_shard(index).maybe_compact()
    }

    /// One self-tuning tick across every shard, each against its own
    /// evidence: frozen shards re-derive their planner from their own
    /// [`ObservationGrid`], live shards re-read their own `LiveStats`
    /// gauges and re-pick their segment arm — so a freshly-flushed
    /// shard can prefer its V7/V8 segments while a memtable-heavy
    /// neighbour stays on the flat scan. Returns how many shards
    /// actually changed plan this tick.
    pub fn replan(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let swapped = match (&shard.auto, &shard.live) {
                    (Some(auto), _) => auto.replan(),
                    (None, Some(engine)) => engine.replan(),
                    (None, None) => false,
                };
                usize::from(swapped)
            })
            .sum()
    }

    /// Total decision-table swaps across all shards since build.
    pub fn plan_epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| match (&shard.auto, &shard.live) {
                (Some(auto), _) => auto.plan_epoch(),
                (None, Some(engine)) => engine.plan_epoch(),
                (None, None) => 0,
            })
            .sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioner this composite was built with.
    pub fn shard_by(&self) -> ShardBy {
        self.by
    }

    /// Every shard backend's self-description, in shard order (the
    /// CLI's `explain` renders per-shard snapshots and decision tables
    /// from these).
    pub fn shard_diags(&self) -> Vec<BackendDiag> {
        self.shards.iter().map(|s| s.backend.diag()).collect()
    }

    /// One query against every shard under `strategy`, returning the
    /// merged global result and total DP cells.
    fn fan_out(&self, query: &[u8], k: u32, strategy: Strategy) -> (MatchSet, u64) {
        let parts = run_queries(strategy, self.shards.len(), |i| {
            let shard = &self.shards[i];
            let (local, cells) = shard.backend.search_counting(query, k);
            shard.queries.fetch_add(1, Ordering::Relaxed);
            shard.matches.fetch_add(local.len() as u64, Ordering::Relaxed);
            (shard.remap(&local), cells)
        });
        let cells = parts.iter().map(|(_, c)| c).sum();
        let sets: Vec<MatchSet> = parts.into_iter().map(|(s, _)| s).collect();
        (merge_match_sets(&sets), cells)
    }
}

impl Backend for ShardedBackend {
    fn name(&self) -> String {
        match &self.router {
            Some(router) => format!(
                "sharded-live[s={}/{}/cap={}]",
                self.shards.len(),
                self.by.name(),
                router.cfg.memtable_cap
            ),
            None => format!("sharded[s={}/{}]", self.shards.len(), self.by.name()),
        }
    }

    fn prepare(&self) {
        for shard in &self.shards {
            shard.backend.prepare();
        }
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_counting(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        // A lone query may parallelize across shards; workload paths
        // override `run_with_strategy` below to parallelize across
        // queries instead (never both — no nested spawns).
        self.fan_out(query, k, auto_strategy(self.shards.len(), self.threads))
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        // Shards run concurrently: the critical path is the costliest
        // shard, not the sum.
        self.shards
            .iter()
            .map(|s| s.backend.cost_hint(snapshot, query_len, k))
            .fold(0.0, f64::max)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.shards.len(), 0)),
            filters: vec!["length", "frequency"],
            plan: None,
        }
    }

    fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        // Cross-shard aggregate per arm name; per-shard breakdowns come
        // from `shard_stats`.
        let mut agg: Vec<(&'static str, u64)> = Vec::new();
        let mut any = false;
        for shard in &self.shards {
            if let Some(counts) = shard.backend.plan_counts() {
                any = true;
                for (name, c) in counts {
                    if let Some(entry) = agg.iter_mut().find(|(n, _)| *n == name) {
                        entry.1 += c;
                    } else {
                        agg.push((name, c));
                    }
                }
            }
        }
        any.then_some(agg)
    }

    fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        Some(
            self.shards
                .iter()
                .map(|s| ShardStats {
                    records: s.records(),
                    queries: s.queries.load(Ordering::Relaxed),
                    matches: s.matches.load(Ordering::Relaxed),
                    plan_counts: s.backend.plan_counts(),
                    live: s.live.as_ref().map(|engine| engine.stats()),
                })
                .collect(),
        )
    }

    fn preferred_strategy(&self) -> Strategy {
        if self.threads > 1 {
            Strategy::FixedPool {
                threads: self.threads,
            }
        } else {
            Strategy::Sequential
        }
    }

    fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        let (nq, s) = (workload.len(), self.shards.len());
        let pool = match strategy {
            Strategy::FixedPool { threads }
            | Strategy::WorkQueue { threads }
            | Strategy::Adaptive {
                max_threads: threads,
            } => threads,
            Strategy::Sequential | Strategy::ThreadPerQuery => 0,
        };
        // Scarce-query regime (micro-batches, small benchmark
        // workloads): too few queries for a pool to balance when one of
        // them is expensive, so flatten the shard × query product into
        // the executor — shard-major, so one query's S probes land in S
        // different chunks of a static partition — and merge per query
        // afterwards. Still a single level of parallelism: the probes
        // themselves stay sequential.
        if s > 1 && pool > 1 && nq < pool * 4 {
            let mut parts = run_queries(strategy, nq * s, |i| {
                let shard = &self.shards[i / nq];
                let q = &workload.queries[i % nq];
                let (local, _) = shard.backend.search_counting(&q.text, q.threshold);
                shard.queries.fetch_add(1, Ordering::Relaxed);
                shard.matches.fetch_add(local.len() as u64, Ordering::Relaxed);
                shard.remap(&local)
            });
            return (0..nq)
                .map(|qi| {
                    let sets: Vec<MatchSet> = (0..s)
                        .map(|si| std::mem::take(&mut parts[si * nq + qi]))
                        .collect();
                    merge_match_sets(&sets)
                })
                .collect();
        }
        // Plenty of queries: parallelize across them and keep the inner
        // shard loop sequential, so no executor ever nests thread
        // spawns and the merge happens inside the parallel region.
        run_queries(strategy, nq, |i| {
            let q = &workload.queries[i];
            self.fan_out(&q.text, q.threshold, Strategy::Sequential).0
        })
    }
}

/// The mutation surface of a live composite. Every method panics on a
/// frozen composite (one not built via [`ShardedBackend::live`]) — the
/// serving layer only reaches for this handle on `--live` engines.
impl MutableBackend for ShardedBackend {
    fn insert(&self, record: &[u8]) -> RecordId {
        let router = self.router();
        let target = route_record(record, self.shards.len());
        let mut state = router.state.lock().expect("router lock");
        let id = state.next_id;
        assert!(id < u32::MAX, "global id space exhausted");
        state.next_id = id + 1;
        state.owner.push(target as u8);
        // The shard append happens inside the router's critical section
        // so ids arrive at each shard in increasing order — the shard
        // memtable's strictly-increasing invariant depends on it.
        self.live_shard(target).insert_with_id(record, id);
        id
    }

    fn delete(&self, id: RecordId) -> bool {
        let target = {
            let state = self.router().state.lock().expect("router lock");
            match state.owner.get(id as usize) {
                Some(&shard) => shard as usize,
                // Never-assigned id: no shard can hold it.
                None => return false,
            }
        };
        // The owner map is append-only and ids are never reused, so the
        // routing stays valid after the lock drops; the shard itself
        // decides live-vs-already-deleted under its own lock.
        self.live_shard(target).delete(id)
    }

    fn maybe_compact(&self) -> bool {
        // One independent step per shard — each behind its own
        // compaction gate, never a composite-wide lock.
        let mut any = false;
        for (i, _) in self.shards.iter().enumerate() {
            any |= self.live_shard(i).maybe_compact();
        }
        any
    }

    fn live_stats(&self) -> LiveStats {
        let mut total = LiveStats::default();
        for (i, _) in self.shards.iter().enumerate() {
            total.accumulate(&self.live_shard(i).stats());
        }
        total
    }

    fn live_shard_stats(&self) -> Option<Vec<LiveStats>> {
        self.router.as_ref()?;
        Some(
            (0..self.shards.len())
                .map(|i| self.live_shard(i).stats())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::QueryRecord;
    use simsearch_scan::SeqVariant;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber", "Ulmen",
        ])
    }

    fn workload() -> Workload {
        Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
                QueryRecord::new("Bxr", 3),
            ],
        }
    }

    fn oracle(ds: &Dataset, w: &Workload) -> Vec<MatchSet> {
        SequentialScan::new(ds).run(SeqVariant::V1Base, w)
    }

    #[test]
    fn partitions_are_disjoint_covering_and_increasing() {
        let ds = dataset();
        for by in [ShardBy::Len, ShardBy::Hash] {
            for s in [1, 2, 3, 8, 32] {
                let parts = partition_ids(&ds, s, by);
                assert_eq!(parts.len(), s);
                let mut all: Vec<RecordId> = parts.iter().flatten().copied().collect();
                for p in &parts {
                    assert!(p.windows(2).all(|w| w[0] < w[1]), "{by:?} s={s}");
                }
                all.sort_unstable();
                assert_eq!(all, (0..ds.len() as u32).collect::<Vec<_>>(), "{by:?} s={s}");
            }
        }
    }

    #[test]
    fn sharded_agrees_with_the_oracle_for_every_configuration() {
        let ds = dataset();
        let w = workload();
        let expected = oracle(&ds, &w);
        for by in [ShardBy::Len, ShardBy::Hash] {
            for s in [1, 2, 3, 8, 32] {
                let backend = ShardedBackend::build(&ds, s, by, 2);
                backend.prepare();
                assert_eq!(backend.run_workload(&w), expected, "{by:?} s={s}");
                for strategy in [
                    Strategy::Sequential,
                    Strategy::FixedPool { threads: 2 },
                    Strategy::WorkQueue { threads: 3 },
                ] {
                    assert_eq!(
                        backend.run_with_strategy(&w, strategy),
                        expected,
                        "{by:?} s={s} {}",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn calibrated_and_fixed_arm_shards_agree_with_the_oracle() {
        let ds = dataset();
        let w = workload();
        let expected = oracle(&ds, &w);
        let calibrated = ShardedBackend::calibrated(&ds, 3, ShardBy::Len, 1);
        assert_eq!(calibrated.run_workload(&w), expected);
        for choice in BackendChoice::ALL {
            let fixed = ShardedBackend::with_fixed_arm(&ds, 3, ShardBy::Hash, 1, choice);
            assert_eq!(fixed.run_workload(&w), expected, "{}", choice.name());
        }
    }

    #[test]
    fn shard_stats_count_queries_and_matches() {
        let ds = dataset();
        let w = workload();
        let backend = ShardedBackend::build(&ds, 3, ShardBy::Len, 1);
        let _ = backend.run_workload(&w);
        let stats = Backend::shard_stats(&backend).expect("sharded reports shard stats");
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.records).sum::<usize>(), ds.len());
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.queries, w.len() as u64, "shard {i}");
            let routed: u64 = s
                .plan_counts
                .as_ref()
                .expect("shard backends are planner-driven")
                .iter()
                .map(|(_, c)| c)
                .sum();
            assert_eq!(routed, w.len() as u64, "shard {i}");
        }
        let total_matches: u64 = stats.iter().map(|s| s.matches).sum();
        let expected_matches: usize = oracle(&ds, &w).iter().map(MatchSet::len).sum();
        assert_eq!(total_matches, expected_matches as u64);
    }

    #[test]
    fn merge_keeps_minimum_distance_on_overlap() {
        let a = MatchSet::from_unsorted(vec![Match::new(1, 3), Match::new(5, 0)]);
        let b = MatchSet::from_unsorted(vec![Match::new(1, 1), Match::new(2, 2)]);
        let merged = merge_match_sets(&[a, b]);
        assert_eq!(
            merged.matches(),
            &[Match::new(1, 1), Match::new(2, 2), Match::new(5, 0)]
        );
    }

    #[test]
    fn merge_handles_empty_inputs() {
        assert_eq!(merge_match_sets(&[]), MatchSet::default());
        let a = MatchSet::from_unsorted(vec![Match::new(0, 0)]);
        let merged = merge_match_sets(&[MatchSet::default(), a.clone(), MatchSet::default()]);
        assert_eq!(merged, a);
    }

    #[test]
    fn topk_matches_unsharded_deepening() {
        let ds = dataset();
        let sharded = ShardedBackend::build(&ds, 3, ShardBy::Len, 1);
        let flat = crate::backend::ScanBackend::new(SequentialScan::new(&ds), SeqVariant::V4Flat);
        for count in [1, 3, 20] {
            let (a, _) = sharded.search_top_k_with(b"Berlim", count, 8);
            let (b, _) = flat.search_top_k_with(b"Berlim", count, 8);
            assert_eq!(a, b, "count {count}");
        }
    }
}
