//! # simsearch-core
//!
//! The engine layer of the `simsearch` workspace: one interface over
//! every solution the paper evaluates, plus the measurement and
//! verification machinery its methodology prescribes.
//!
//! * [`backend`] — the unified [`backend::Backend`] trait: one
//!   execution seam over every scan rung and index structure, plus the
//!   planner-driven [`backend::AutoBackend`];
//! * [`planner`] — the adaptive [`planner::Planner`]: cost hints from
//!   dataset statistics, one explainable [`planner::PlanDecision`] per
//!   query class;
//! * [`calibration`] — persistence bridge for measured cost models:
//!   a calibrated [`planner::Planner`] round-trips through the index
//!   dump's calibration section, invalidated on dataset drift;
//! * [`engine`] — [`engine::SearchEngine`] builds and runs any solution:
//!   each scan rung (§3), each index rung (§4), and the extension
//!   engines (frequency-annotated radix tree, q-gram index, length
//!   buckets);
//! * [`verify`] — cross-validation of engines against a reference
//!   (§3.7 / §4.4 correctness methodology);
//! * [`experiment`] — wall-clock measurement of 100/500/1,000-query
//!   workload prefixes (§5.2 protocol);
//! * [`report`] — table rendering in the shape of the paper's appendix;
//! * [`presets`] — the standard synthetic datasets and workloads;
//! * [`join`] — the similarity self-join (the venue's other competition
//!   track), scan- and index-based;
//! * [`passjoin`] — the sub-quadratic join tier: exact PASS-JOIN over
//!   an inverted segment index, plus MinJoin's content-defined
//!   partitioning for long records;
//! * [`topk`] — nearest-neighbour search by iterative deepening;
//! * [`lsm`] — live ingest: [`lsm::LiveEngine`] puts an append-only
//!   memtable and tombstone set in front of immutable V7 segments, so
//!   the frozen-dataset machinery serves a mutable workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibration;
pub mod engine;
pub mod experiment;
pub mod join;
pub mod lsm;
pub mod passjoin;
pub mod planner;
pub mod presets;
pub mod report;
pub mod sharded;
pub mod topk;
pub mod verify;

pub use backend::{
    AutoBackend, Backend, BackendDiag, FilteredScanBackend, ObservationGrid, PlanReport,
    QgramBackend, RadixBackend, SortedScanBackend,
};
pub use calibration::{
    load_calibration, planner_from_record, planner_to_record, save_calibration,
};
pub use engine::{build_backend, EngineKind, IdxVariant, SearchEngine};
pub use lsm::{LiveEngine, LiveStats, LsmConfig, MutableBackend, SegmentArm};
pub use sharded::{
    merge_match_sets, partition_ids, remap_to_global, route_record, ShardAutoBackend, ShardBy,
    ShardStats, ShardedBackend,
};
pub use planner::{
    BackendChoice, CellSample, CostEstimate, Observation, PlanDecision, Planner, QueryClass,
    TopkDecision, MIN_CELL_OBSERVATIONS,
};
pub use join::{CrossPair, JoinPair};
pub use passjoin::{
    even_partitions, min_join, min_join_partitions, min_join_with_stats, parallel_min_join,
    parallel_pass_join, pass_join, pass_join_with_stats, JoinStats, MinJoinConfig,
};
pub use topk::{search_top_k, search_top_k_with};
pub use experiment::{
    measure_extrapolated, measure_per_threshold, measure_prefixes, Measurement, QUERY_COUNTS,
};
pub use report::Table;
pub use verify::{compare_results, cross_validate, Mismatch};

// Re-export the vocabulary types so `simsearch_core` is self-sufficient
// for most users.
pub use simsearch_data::{
    Dataset, Match, MatchSet, QueryRecord, RecordId, StatsSnapshot, Workload,
};
pub use simsearch_distance::KernelKind;
pub use simsearch_parallel::Strategy;
pub use simsearch_scan::SeqVariant;
