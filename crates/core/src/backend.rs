//! The unified `Backend` trait: one execution seam over every solution.
//!
//! Before this module, scan and index code paths were parallel
//! universes — `SequentialScan` had one API, each index structure
//! another, and every consumer (`SearchEngine`, the serving layer, the
//! CLI, the benches) hard-wired its choice. [`Backend`] is the shared
//! abstraction they all speak now: *prepare once, then answer
//! threshold queries* — with provided methods for DP-cell counting,
//! top-k deepening, workload execution under any executor, cost hints
//! for the planner, and self-description for diagnostics.
//!
//! [`AutoBackend`] closes the loop: it consults a
//! [`Planner`](crate::planner::Planner) per query and routes to the
//! cheapest arm, counting every routing decision so serving metrics
//! and bench JSON can report `plan_decisions`.

use crate::planner::{
    static_cost, BackendChoice, CellSample, Observation, PlanDecision, Planner, QueryClass,
    MAX_K_CLASS, MIN_CELL_OBSERVATIONS, NUM_LEN_CLASSES,
};
use crate::topk;
use simsearch_data::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};
use simsearch_data::{Alphabet, Dataset, Match, MatchSet, StatsSnapshot, Workload};
use simsearch_distance::KernelKind;
use simsearch_filters::{FilterChain, FrequencyFilter, LengthFilter};
use simsearch_index::{BkTree, LengthBuckets, QgramIndex, RadixTrie, SuffixIndex, Trie};
use simsearch_parallel::{auto_strategy, run_queries, Strategy};
use simsearch_scan::{SeqVariant, SequentialScan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// What a backend reports about itself.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendDiag {
    /// Human-readable name.
    pub name: String,
    /// `(node or posting count, approximate bytes)` when the backend
    /// owns an index structure.
    pub structure: Option<(usize, usize)>,
    /// Names of the candidate filters feeding its verification stage.
    pub filters: Vec<&'static str>,
    /// Planner state, present only for the auto backend.
    pub plan: Option<PlanReport>,
}

/// The auto backend's recorded planner state: the decision table and
/// how many queries each arm has answered so far.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The snapshot the planner was built from.
    pub snapshot: StatsSnapshot,
    /// Every per-class decision, in table order.
    pub decisions: Vec<PlanDecision>,
    /// `(backend name, queries routed to it)` per candidate.
    pub counts: Vec<(&'static str, u64)>,
    /// Whether a micro-calibration probe scaled the hints.
    pub calibrated: bool,
}

/// One execution backend: prepare once, then answer threshold queries.
///
/// Required methods are the per-query kernel ([`Backend::search`]), the
/// planner hook ([`Backend::cost_hint`]) and self-description
/// ([`Backend::diag`]). Everything else — cell counting, top-k
/// deepening, workload execution — has defaults expressed in terms of
/// those, which concrete backends override only when they can do
/// better (the sorted scan counts DP cells; the scan rungs keep their
/// paper-mandated scheduling).
pub trait Backend: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> String;

    /// Eagerly builds auxiliary state so the cost lands at build time,
    /// not inside the first timed query. Idempotent; default no-op.
    fn prepare(&self) {}

    /// Answers one threshold query.
    fn search(&self, query: &[u8], k: u32) -> MatchSet;

    /// Answers one query and reports DP cells computed, when the
    /// backend counts them (0 otherwise).
    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        (self.search(query, k), 0)
    }

    /// The `count` nearest records by iterative deepening (radius 0,
    /// then doubling, capped at `max_radius`), plus DP cells computed
    /// across all probes.
    fn search_top_k_with(
        &self,
        query: &[u8],
        count: usize,
        max_radius: u32,
    ) -> (Vec<Match>, u64) {
        let mut cells = 0u64;
        let matches = topk::search_top_k_with(
            |radius| {
                let (m, c) = self.search_counting(query, radius);
                cells += c;
                m
            },
            count,
            max_radius,
        );
        (matches, cells)
    }

    /// Estimated cost of one query under this backend, in the
    /// planner's rough DP-cell units (lower is better).
    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64;

    /// Self-description for diagnostics and metrics.
    fn diag(&self) -> BackendDiag;

    /// `(backend name, queries routed)` counters for planner-driven
    /// backends; `None` for fixed backends. Cheap (no decision-table
    /// clone), so per-batch metrics publishing can call it freely.
    fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        None
    }

    /// Per-shard lifetime statistics for sharded composites
    /// ([`crate::sharded::ShardedBackend`]); `None` for single-arena
    /// backends. Cheap (atomic loads), so per-batch metrics publishing
    /// can call it freely.
    fn shard_stats(&self) -> Option<Vec<crate::sharded::ShardStats>> {
        None
    }

    /// The executor [`Backend::run_workload`] uses by default.
    fn preferred_strategy(&self) -> Strategy {
        Strategy::Sequential
    }

    /// Executes a whole workload (the quantity the paper times).
    fn run_workload(&self, workload: &Workload) -> Vec<MatchSet> {
        self.run_with_strategy(workload, self.preferred_strategy())
    }

    /// Executes a workload under an explicit executor, overriding the
    /// backend's own scheduling. Results are identical to
    /// [`Backend::run_workload`] for every strategy.
    fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.search(&q.text, q.threshold)
        })
    }
}

/// Shared handles are backends too: an `Arc<T>` forwards every method
/// (including the provided ones, so `T`'s overrides are never shadowed
/// by the trait defaults). This is what lets a live engine be owned
/// simultaneously by the serving layer's mutation path and a sharded
/// composite's read fan-out without a bespoke wrapper per consumer.
impl<T: Backend + ?Sized> Backend for std::sync::Arc<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn prepare(&self) {
        (**self).prepare()
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        (**self).search(query, k)
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        (**self).search_counting(query, k)
    }

    fn search_top_k_with(
        &self,
        query: &[u8],
        count: usize,
        max_radius: u32,
    ) -> (Vec<Match>, u64) {
        (**self).search_top_k_with(query, count, max_radius)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        (**self).cost_hint(snapshot, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        (**self).diag()
    }

    fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        (**self).plan_counts()
    }

    fn shard_stats(&self) -> Option<Vec<crate::sharded::ShardStats>> {
        (**self).shard_stats()
    }

    fn preferred_strategy(&self) -> Strategy {
        (**self).preferred_strategy()
    }

    fn run_workload(&self, workload: &Workload) -> Vec<MatchSet> {
        (**self).run_workload(workload)
    }

    fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        (**self).run_with_strategy(workload, strategy)
    }
}

/// A rung of the paper's sequential-scan ladder behind the trait.
pub struct ScanBackend<'a> {
    scan: SequentialScan<'a>,
    variant: SeqVariant,
}

impl<'a> ScanBackend<'a> {
    /// Wraps a scan (possibly already prepared) at one rung.
    pub fn new(scan: SequentialScan<'a>, variant: SeqVariant) -> Self {
        Self { scan, variant }
    }
}

impl Backend for ScanBackend<'_> {
    fn name(&self) -> String {
        format!("scan[{}]", self.variant.label())
    }

    fn prepare(&self) {
        self.scan.prepare(self.variant);
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.scan.search_one(self.variant, query, k)
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        match self.variant {
            SeqVariant::V7SortedPrefix => self.scan.v7_search(query, k),
            SeqVariant::V8BitParallel => self.scan.v8_search(query, k),
            _ => (self.search(query, k), 0),
        }
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        let choice = match self.variant {
            SeqVariant::V7SortedPrefix => BackendChoice::ScanSorted,
            SeqVariant::V8BitParallel => BackendChoice::ScanBitParallel,
            _ => BackendChoice::ScanFlat,
        };
        let base = static_cost(snapshot, choice, query_len, k);
        match self.variant {
            // The deliberately wasteful early rungs: no filters, naive
            // full-matrix DP, per-comparison allocations.
            SeqVariant::V1Base => base * 25.0,
            SeqVariant::V2FastEd | SeqVariant::V3Borrowed => base * 4.0,
            _ => base,
        }
    }

    fn diag(&self) -> BackendDiag {
        let filters = match self.variant {
            SeqVariant::V1Base => vec![],
            _ => vec!["length"],
        };
        BackendDiag {
            name: self.name(),
            structure: None,
            filters,
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        match self.variant {
            SeqVariant::V5ThreadPerQuery => Strategy::ThreadPerQuery,
            SeqVariant::V6Pool { threads } => Strategy::FixedPool { threads },
            _ => Strategy::Sequential,
        }
    }

    fn run_workload(&self, workload: &Workload) -> Vec<MatchSet> {
        // Delegate so each rung keeps exactly the scheduling the paper
        // prescribes for it.
        self.scan.run(self.variant, workload)
    }
}

/// A flat scan with an explicit kernel/executor pair (ablations).
pub struct KernelScanBackend<'a> {
    scan: SequentialScan<'a>,
    kernel: KernelKind,
    strategy: Strategy,
}

impl<'a> KernelScanBackend<'a> {
    /// Wraps a scan with the given kernel and executor.
    pub fn new(scan: SequentialScan<'a>, kernel: KernelKind, strategy: Strategy) -> Self {
        Self {
            scan,
            kernel,
            strategy,
        }
    }
}

impl Backend for KernelScanBackend<'_> {
    fn name(&self) -> String {
        format!("scan[{}/{}]", self.kernel.name(), self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        let w = Workload {
            queries: vec![simsearch_data::QueryRecord::new(query.to_vec(), k)],
        };
        self.scan
            .run_with(self.kernel, Strategy::Sequential, &w)
            .pop()
            .expect("one query in, one result out")
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::ScanFlat, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: vec!["length"],
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }

    fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        self.scan.run_with(self.kernel, strategy, workload)
    }
}

/// A flat scan whose candidates come from a [`FilterChain`] — the
/// planner's scan arm, running the unified filter→verify pipeline
/// (length filter always; frequency vectors when the corpus has a
/// tracked alphabet).
pub struct FilteredScanBackend<'a> {
    scan: SequentialScan<'a>,
    chain: FilterChain,
    strategy: Strategy,
}

impl<'a> FilteredScanBackend<'a> {
    /// Builds the standard chain for `dataset`: the length filter plus
    /// frequency vectors over DNA symbols (DNA corpora) or vowels (the
    /// paper's city-name choice).
    pub fn new(dataset: &'a Dataset, strategy: Strategy) -> Self {
        let dna = Alphabet::dna();
        let tracked = if dataset.records().all(|r| dna.covers(r)) {
            DNA_SYMBOLS
        } else {
            VOWEL_SYMBOLS
        };
        let chain = FilterChain::new()
            .push(LengthFilter::build(dataset))
            .push(FrequencyFilter::build(dataset, tracked));
        Self {
            scan: SequentialScan::new(dataset),
            chain,
            strategy,
        }
    }
}

impl Backend for FilteredScanBackend<'_> {
    fn name(&self) -> String {
        format!("scan[filtered/{}]", self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.scan.search_filtered(&self.chain, query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::ScanFlat, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: self.chain.names(),
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }

    fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        self.scan.run_filtered(&self.chain, strategy, workload)
    }
}

/// The V7 sorted-prefix scan behind the trait, with DP-cell counting.
pub struct SortedScanBackend<'a> {
    scan: SequentialScan<'a>,
}

impl<'a> SortedScanBackend<'a> {
    /// Wraps a scan; the sorted view is built by [`Backend::prepare`].
    pub fn new(scan: SequentialScan<'a>) -> Self {
        Self { scan }
    }
}

impl Backend for SortedScanBackend<'_> {
    fn name(&self) -> String {
        "scan[sorted-prefix]".into()
    }

    fn prepare(&self) {
        self.scan.prepare(SeqVariant::V7SortedPrefix);
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.scan.v7_search(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        self.scan.v7_search(query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::ScanSorted, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: vec!["length"],
            plan: None,
        }
    }
}

/// The V8 bit-parallel sweep behind the trait: the sorted arena of V7,
/// but with the DP column packed into Myers words and checkpointed at
/// 64-cell block granularity, so resuming from the running LCP floor
/// reuses whole words instead of scalar rows. DP-cell counts flow
/// through [`Backend::search_counting`] in the same row-equivalent
/// units V7 reports, keeping diagnostics comparable across rungs.
pub struct BitParallelScanBackend<'a> {
    scan: SequentialScan<'a>,
}

impl<'a> BitParallelScanBackend<'a> {
    /// Wraps a scan; the sorted view is built by [`Backend::prepare`].
    pub fn new(scan: SequentialScan<'a>) -> Self {
        Self { scan }
    }
}

impl Backend for BitParallelScanBackend<'_> {
    fn name(&self) -> String {
        "scan[bit-parallel]".into()
    }

    fn prepare(&self) {
        self.scan.prepare(SeqVariant::V8BitParallel);
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.scan.v8_search(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        self.scan.v8_search(query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::ScanBitParallel, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: vec!["length"],
            plan: None,
        }
    }
}

/// The uncompressed prefix tree behind the trait.
pub struct TrieBackend {
    trie: Trie,
    paper: bool,
}

impl TrieBackend {
    /// Builds the trie; `paper` selects the paper's §4.1 pruning over
    /// the modern banded descent.
    pub fn build(dataset: &Dataset, paper: bool) -> Self {
        Self {
            trie: simsearch_index::trie::build(dataset),
            paper,
        }
    }
}

impl Backend for TrieBackend {
    fn name(&self) -> String {
        format!(
            "trie[{}]",
            if self.paper { "paper" } else { "modern" }
        )
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        if self.paper {
            self.trie.search_paper(query, k)
        } else {
            self.trie.search(query, k)
        }
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        let base = static_cost(snapshot, BackendChoice::Trie, query_len, k);
        if self.paper {
            base * 3.0 // full-width rows, prefix-condition-only pruning
        } else {
            base
        }
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.trie.node_count(), self.trie.memory_bytes())),
            filters: vec!["length"],
            plan: None,
        }
    }
}

/// The compressed (radix) tree behind the trait, optionally with
/// frequency-vector annotations.
pub struct RadixBackend {
    radix: RadixTrie,
    paper: bool,
    strategy: Strategy,
    freq: bool,
}

impl RadixBackend {
    /// Builds the radix tree.
    pub fn build(dataset: &Dataset, paper: bool, strategy: Strategy) -> Self {
        Self {
            radix: simsearch_index::radix::build(dataset),
            paper,
            strategy,
            freq: false,
        }
    }

    /// Builds the radix tree with frequency vectors over the alphabet
    /// that fits the data (§6 future work).
    pub fn build_with_freq(dataset: &Dataset, strategy: Strategy) -> Self {
        let dna = Alphabet::dna();
        let tracked = if dataset.records().all(|r| dna.covers(r)) {
            DNA_SYMBOLS
        } else {
            VOWEL_SYMBOLS
        };
        Self {
            radix: simsearch_index::radix::build_with_freq(dataset, tracked),
            paper: false,
            strategy,
            freq: true,
        }
    }
}

impl Backend for RadixBackend {
    fn name(&self) -> String {
        let mode = if self.paper {
            "paper"
        } else if self.freq {
            "freq"
        } else {
            "modern"
        };
        format!("radix[{mode}/{}]", self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        if self.paper {
            self.radix.search_paper(query, k)
        } else {
            self.radix.search(query, k)
        }
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        let base = static_cost(snapshot, BackendChoice::Radix, query_len, k);
        if self.paper {
            base * 3.0
        } else {
            base
        }
    }

    fn diag(&self) -> BackendDiag {
        let mut filters = vec!["length"];
        if self.freq {
            filters.push("frequency");
        }
        BackendDiag {
            name: self.name(),
            structure: Some((self.radix.node_count(), self.radix.memory_bytes())),
            filters,
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }
}

/// The inverted q-gram index behind the trait.
pub struct QgramBackend<'a> {
    dataset: &'a Dataset,
    idx: QgramIndex,
    q: usize,
    strategy: Strategy,
}

impl<'a> QgramBackend<'a> {
    /// Builds the index with gram size `q`.
    pub fn build(dataset: &'a Dataset, q: usize, strategy: Strategy) -> Self {
        Self {
            dataset,
            idx: QgramIndex::build(dataset, q),
            q,
            strategy,
        }
    }
}

impl Backend for QgramBackend<'_> {
    fn name(&self) -> String {
        format!("qgram[q={}/{}]", self.q, self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.idx.search(self.dataset, query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::Qgram, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.idx.distinct_grams(), self.idx.memory_bytes())),
            filters: vec!["qgram-count", "length"],
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }
}

/// The length-bucketed scan behind the trait.
pub struct BucketsBackend<'a> {
    dataset: &'a Dataset,
    buckets: LengthBuckets,
    strategy: Strategy,
}

impl<'a> BucketsBackend<'a> {
    /// Builds the buckets.
    pub fn build(dataset: &'a Dataset, strategy: Strategy) -> Self {
        Self {
            dataset,
            buckets: LengthBuckets::build(dataset),
            strategy,
        }
    }
}

impl Backend for BucketsBackend<'_> {
    fn name(&self) -> String {
        format!("buckets[{}]", self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.buckets.search(self.dataset, query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::Buckets, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.buckets.bucket_count(), 0)),
            filters: vec!["length"],
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }
}

/// The suffix-array baseline behind the trait.
pub struct SuffixBackend<'a> {
    dataset: &'a Dataset,
    idx: SuffixIndex,
    strategy: Strategy,
}

impl<'a> SuffixBackend<'a> {
    /// Builds the suffix index.
    pub fn build(dataset: &'a Dataset, strategy: Strategy) -> Self {
        Self {
            dataset,
            idx: SuffixIndex::build(dataset),
            strategy,
        }
    }
}

impl Backend for SuffixBackend<'_> {
    fn name(&self) -> String {
        format!("suffix-array[{}]", self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.idx.search(self.dataset, query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        // No dedicated model: approximate with the flat scan's shape.
        static_cost(snapshot, BackendChoice::ScanFlat, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.idx.record_count(), self.idx.memory_bytes())),
            filters: vec!["length"],
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }
}

/// The Burkhard–Keller metric tree behind the trait.
pub struct BkBackend<'a> {
    dataset: &'a Dataset,
    tree: BkTree,
    strategy: Strategy,
}

impl<'a> BkBackend<'a> {
    /// Builds the tree.
    pub fn build(dataset: &'a Dataset, strategy: Strategy) -> Self {
        Self {
            dataset,
            tree: BkTree::build(dataset),
            strategy,
        }
    }
}

impl Backend for BkBackend<'_> {
    fn name(&self) -> String {
        format!("bk-tree[{}]", self.strategy.name())
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.tree.search(self.dataset, query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        static_cost(snapshot, BackendChoice::BkTree, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        BackendDiag {
            name: self.name(),
            structure: Some((self.tree.node_count(), 0)),
            filters: vec!["triangle-inequality"],
            plan: None,
        }
    }

    fn preferred_strategy(&self) -> Strategy {
        self.strategy
    }
}

/// One lock-free accumulation cell: three relaxed atomics that a
/// replan tick snapshots into a [`CellSample`].
#[derive(Default)]
struct AtomicCell {
    nanos: AtomicU64,
    predicted: AtomicU64,
    count: AtomicU64,
}

impl AtomicCell {
    fn record(&self, nanos: u64, predicted: f64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        // Each query contributes ≥ 1 predicted unit, which bounds the
        // derived multiplier by the cell's total nanoseconds.
        self.predicted
            .fetch_add(predicted.max(1.0) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CellSample {
        CellSample {
            nanos: self.nanos.load(Ordering::Relaxed),
            predicted: self.predicted.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// The live latency registry the self-tuning loop closes over: one
/// accumulation cell per `(query class, arm)` plus one pooled top-k
/// cell per arm. Routed backends record `(measured nanos, statically
/// predicted units)` here on every query; a replan tick snapshots the
/// grid and hands it to [`Planner::with_class_samples`] to re-derive
/// the multipliers from serving traffic instead of the one-shot
/// build-time probe. All counters are relaxed atomics — recording
/// never blocks the query path, and a tick racing live queries only
/// folds a query into this tick or the next.
pub struct ObservationGrid {
    cells: Vec<[AtomicCell; BackendChoice::COUNT]>,
    topk: [AtomicCell; BackendChoice::COUNT],
}

impl Default for ObservationGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl ObservationGrid {
    /// An empty grid covering every query class.
    pub fn new() -> Self {
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        Self {
            cells: (0..rows)
                .map(|_| std::array::from_fn(|_| AtomicCell::default()))
                .collect(),
            topk: std::array::from_fn(|_| AtomicCell::default()),
        }
    }

    /// Records one answered threshold query.
    pub fn record(
        &self,
        class: QueryClass,
        choice: BackendChoice,
        nanos: u64,
        predicted: f64,
    ) {
        self.cells[class.table_index()][choice.index()].record(nanos, predicted);
    }

    /// Records one full top-k deepening run.
    pub fn record_topk(&self, choice: BackendChoice, nanos: u64, predicted: f64) {
        self.topk[choice.index()].record(nanos, predicted);
    }

    /// Snapshot of every class cell, in table order — the shape
    /// [`Planner::with_class_samples`] consumes.
    pub fn class_samples(&self) -> Vec<[CellSample; BackendChoice::COUNT]> {
        self.cells
            .iter()
            .map(|row| std::array::from_fn(|i| row[i].snapshot()))
            .collect()
    }

    /// Snapshot of the per-arm top-k cells.
    pub fn topk_samples(&self) -> [CellSample; BackendChoice::COUNT] {
        std::array::from_fn(|i| self.topk[i].snapshot())
    }

    /// Total queries recorded (threshold + top-k).
    pub fn total(&self) -> u64 {
        let classes: u64 = self
            .cells
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.count.load(Ordering::Relaxed))
            .sum();
        let topk: u64 = self.topk.iter().map(|c| c.count.load(Ordering::Relaxed)).sum();
        classes + topk
    }

    /// Pooled observed nanoseconds per arm (threshold + top-k), in
    /// [`BackendChoice::ALL`] order — what the serving layer mirrors
    /// into `STATS` as the per-arm latency registry.
    pub fn arm_nanos(&self) -> [u64; BackendChoice::COUNT] {
        std::array::from_fn(|i| {
            let classes: u64 = self
                .cells
                .iter()
                .map(|row| row[i].nanos.load(Ordering::Relaxed))
                .sum();
            classes + self.topk[i].nanos.load(Ordering::Relaxed)
        })
    }
}

/// The planner-driven backend: consults a [`Planner`] per query and
/// routes to the cheapest arm, counting every decision.
///
/// Arms are built lazily (a candidate the decision table never picks
/// costs nothing); [`Backend::prepare`] forces every *chosen* arm so
/// no build lands inside a timed query. All arms return byte-identical
/// results (the workspace's cross-variant oracles), so routing is a
/// pure performance decision — correctness does not depend on the
/// planner.
///
/// The planner is held behind an `RwLock<Arc<..>>` so a background
/// replan tick can atomically swap in a freshly derived decision table
/// while queries are in flight: the hot path copies the decision out
/// under a read lock and never holds it across an arm call. Every
/// routed query is timed into an [`ObservationGrid`]; [`AutoBackend::replan`]
/// closes the loop.
pub struct AutoBackend<'a> {
    dataset: &'a Dataset,
    threads: usize,
    planner: RwLock<Arc<Planner>>,
    plan_epoch: AtomicU64,
    grid: ObservationGrid,
    arms: [OnceLock<Box<dyn Backend + 'a>>; BackendChoice::COUNT],
    counters: [AtomicU64; BackendChoice::COUNT],
}

impl<'a> AutoBackend<'a> {
    /// The default candidate set: the backends with distinct asymptotic
    /// profiles and sub-quadratic build cost (the BK-tree's build —
    /// one full distance per insert — rules it out at scale, and the
    /// bucketed scan duplicates the flat scan's profile).
    pub const DEFAULT_CANDIDATES: [BackendChoice; 5] = [
        BackendChoice::ScanFlat,
        BackendChoice::ScanSorted,
        BackendChoice::ScanBitParallel,
        BackendChoice::Radix,
        BackendChoice::Qgram,
    ];

    /// Builds an auto backend with purely static (deterministic)
    /// planning over the default candidates.
    pub fn new(dataset: &'a Dataset, threads: usize) -> Self {
        let snapshot = StatsSnapshot::compute(dataset);
        let planner = Planner::new(snapshot, &Self::DEFAULT_CANDIDATES);
        Self::with_planner(dataset, threads, planner)
    }

    /// Builds an auto backend and calibrates the planner with a
    /// micro-probe: every candidate arm is built, the probe workload
    /// runs through each, and measured time scales that arm's cost
    /// hints. Like index construction, the probe is paid at build time
    /// and excluded from query timing. An empty probe yields static
    /// planning.
    pub fn calibrated(dataset: &'a Dataset, threads: usize, probe: &Workload) -> Self {
        let snapshot = StatsSnapshot::compute(dataset);
        if probe.queries.is_empty() {
            let planner = Planner::new(snapshot, &Self::DEFAULT_CANDIDATES);
            return Self::with_planner(dataset, threads, planner);
        }
        let uncalibrated = Self::with_planner(
            dataset,
            threads,
            Planner::new(snapshot.clone(), &Self::DEFAULT_CANDIDATES),
        );
        let mut observations = Vec::new();
        for &choice in &Self::DEFAULT_CANDIDATES {
            let arm = uncalibrated.arm(choice);
            // One untimed pass warms lazy state (and caches), then two
            // timed per-query passes measure steady-state cost; the
            // planner groups the timings by query class, so the static
            // model's shape error is corrected class by class instead
            // of with one arm-wide ratio.
            let _ = arm.run_with_strategy(probe, Strategy::Sequential);
            for _ in 0..2 {
                for q in &probe.queries {
                    let started = std::time::Instant::now();
                    let _ = arm.search(&q.text, q.threshold);
                    observations.push(Observation {
                        choice,
                        query_len: q.text.len(),
                        k: q.threshold,
                        nanos: started.elapsed().as_nanos() as f64,
                    });
                }
            }
        }
        let planner =
            Planner::with_observations(snapshot, &Self::DEFAULT_CANDIDATES, &observations);
        // Keep the arms the probe already built. Build-time calibration
        // is the epoch-0 baseline, not a replan — the epoch counts
        // serving-time swaps only.
        let auto = uncalibrated;
        *auto.planner.write().expect("planner lock") = Arc::new(planner);
        for counter in &auto.counters {
            counter.store(0, Ordering::Relaxed);
        }
        auto
    }

    fn with_planner(dataset: &'a Dataset, threads: usize, planner: Planner) -> Self {
        Self {
            dataset,
            threads,
            planner: RwLock::new(Arc::new(planner)),
            plan_epoch: AtomicU64::new(0),
            grid: ObservationGrid::new(),
            arms: std::array::from_fn(|_| OnceLock::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The current planner (for `explain` and tests) — a cheap shared
    /// handle; a concurrent replan swaps the slot, never mutates the
    /// table behind an existing handle.
    pub fn planner(&self) -> Arc<Planner> {
        self.planner.read().expect("planner lock").clone()
    }

    /// How many times the decision table has been swapped since build:
    /// 0 until the first [`AutoBackend::set_planner`] /
    /// [`AutoBackend::replan`], whether or not the build-time probe
    /// calibrated the baseline.
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch.load(Ordering::Relaxed)
    }

    /// The live latency registry this backend records into.
    pub fn observations(&self) -> &ObservationGrid {
        &self.grid
    }

    /// Pooled observed nanoseconds per candidate, in candidate order —
    /// the serving layer's `STATS` view of the latency registry.
    pub fn observed_arm_nanos(&self) -> Vec<(&'static str, u64)> {
        let nanos = self.grid.arm_nanos();
        self.planner()
            .candidates()
            .iter()
            .map(|&c| (c.name(), nanos[c.index()]))
            .collect()
    }

    /// Atomically installs a replacement planner and bumps the plan
    /// epoch. Refuses (returns `false`) when the candidate set differs
    /// from the current one: counters, metrics label sets, and the
    /// lazily built arms are all keyed by the candidate list fixed at
    /// build time. This is how a restarted daemon installs persisted
    /// calibration — which is why the epoch starts above 0 after a
    /// successful restore.
    pub fn set_planner(&self, planner: Planner) -> bool {
        let mut slot = self.planner.write().expect("planner lock");
        if planner.candidates() != slot.candidates() {
            return false;
        }
        *slot = Arc::new(planner);
        drop(slot);
        self.plan_epoch.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// One self-tuning tick: re-derives per-(arm, class) multipliers
    /// from the grid's live observations and swaps the fresh decision
    /// table in. Returns `false` without swapping when no cell has
    /// reached [`MIN_CELL_OBSERVATIONS`] yet — a thin grid must not
    /// overwrite a calibrated baseline with an all-1.0 table.
    pub fn replan(&self) -> bool {
        let current = self.planner();
        let next = Planner::with_class_samples(
            current.snapshot().clone(),
            current.candidates(),
            &self.grid.class_samples(),
            &self.grid.topk_samples(),
            MIN_CELL_OBSERVATIONS,
        );
        if !next.is_calibrated() {
            return false;
        }
        self.set_planner(next)
    }

    /// A small deterministic probe workload drawn from the dataset
    /// itself: up to 16 evenly spaced records, each queried at a
    /// threshold scaled to the mean length (≈10%, clamped to 1..=8) —
    /// the shape of the paper's §5 protocol, which queries with
    /// (mutated) records. Long-lived consumers with no workload in
    /// hand (the serving daemon) calibrate with this.
    pub fn default_probe(dataset: &Dataset) -> Workload {
        let n = dataset.len();
        let mut queries = Vec::new();
        if n > 0 {
            let count = n.min(16);
            let mean = dataset.arena_len() / n;
            let k = (mean / 10).clamp(1, 8) as u32;
            for i in 0..count {
                let id = (i * n / count) as u32;
                queries.push(simsearch_data::QueryRecord::new(
                    dataset.get(id).to_vec(),
                    k,
                ));
            }
        }
        Workload { queries }
    }

    /// `(backend name, queries routed)` per candidate, in candidate
    /// order. Counts accumulate over the backend's lifetime.
    pub fn plan_counts(&self) -> Vec<(&'static str, u64)> {
        self.planner()
            .candidates()
            .iter()
            .map(|&c| (c.name(), self.counters[c.index()].load(Ordering::Relaxed)))
            .collect()
    }

    fn arm(&self, choice: BackendChoice) -> &dyn Backend {
        self.arms[choice.index()]
            .get_or_init(|| {
                let arm: Box<dyn Backend + 'a> = match choice {
                    BackendChoice::ScanFlat => Box::new(FilteredScanBackend::new(
                        self.dataset,
                        Strategy::Sequential,
                    )),
                    BackendChoice::ScanSorted => {
                        Box::new(SortedScanBackend::new(SequentialScan::new(self.dataset)))
                    }
                    BackendChoice::ScanBitParallel => Box::new(BitParallelScanBackend::new(
                        SequentialScan::new(self.dataset),
                    )),
                    BackendChoice::Trie => Box::new(TrieBackend::build(self.dataset, false)),
                    BackendChoice::Radix => {
                        Box::new(RadixBackend::build(self.dataset, false, Strategy::Sequential))
                    }
                    BackendChoice::Qgram => {
                        Box::new(QgramBackend::build(self.dataset, 2, Strategy::Sequential))
                    }
                    BackendChoice::Buckets => {
                        Box::new(BucketsBackend::build(self.dataset, Strategy::Sequential))
                    }
                    BackendChoice::BkTree => {
                        Box::new(BkBackend::build(self.dataset, Strategy::Sequential))
                    }
                };
                arm.prepare();
                arm
            })
            .as_ref()
    }
}

impl Backend for AutoBackend<'_> {
    fn name(&self) -> String {
        format!(
            "auto[{}]",
            if self.planner().is_calibrated() {
                "calibrated"
            } else {
                "static"
            }
        )
    }

    fn prepare(&self) {
        // Force every arm the decision table can actually pick.
        let mut chosen: Vec<BackendChoice> = self
            .planner()
            .decisions()
            .iter()
            .map(|d| d.chosen)
            .collect();
        chosen.sort_by_key(|c| c.index());
        chosen.dedup();
        for choice in chosen {
            self.arm(choice);
        }
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_counting(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        // Copy the decision out under the read lock; never hold the
        // lock across the arm call, or a replan tick would stall behind
        // the slowest in-flight query.
        let (chosen, class, predicted) = {
            let planner = self.planner.read().expect("planner lock");
            let chosen = planner.decide(query.len(), k).chosen;
            (
                chosen,
                QueryClass::of(planner.snapshot(), query.len(), k),
                static_cost(planner.snapshot(), chosen, query.len(), k),
            )
        };
        self.counters[chosen.index()].fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let answer = self.arm(chosen).search_counting(query, k);
        self.grid
            .record(class, chosen, started.elapsed().as_nanos() as u64, predicted);
        answer
    }

    fn search_top_k_with(
        &self,
        query: &[u8],
        count: usize,
        max_radius: u32,
    ) -> (Vec<Match>, u64) {
        // Top-k routes on its own curve: the whole deepening run goes
        // to the arm whose *summed* schedule cost is smallest, instead
        // of re-deciding per radius on the threshold table (whose
        // multipliers describe single probes, not re-entrant series).
        let (chosen, predicted) = {
            let planner = self.planner.read().expect("planner lock");
            let chosen = planner.decide_topk(query.len(), count, max_radius).chosen;
            (
                chosen,
                planner.topk_static_units(chosen, query.len(), count, max_radius),
            )
        };
        self.counters[chosen.index()].fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let answer = self.arm(chosen).search_top_k_with(query, count, max_radius);
        self.grid
            .record_topk(chosen, started.elapsed().as_nanos() as u64, predicted);
        answer
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        self.planner()
            .candidates()
            .iter()
            .map(|&c| static_cost(snapshot, c, query_len, k))
            .fold(f64::INFINITY, f64::min)
    }

    fn diag(&self) -> BackendDiag {
        let planner = self.planner();
        BackendDiag {
            name: self.name(),
            structure: None,
            filters: vec!["length", "frequency"],
            plan: Some(PlanReport {
                snapshot: planner.snapshot().clone(),
                decisions: planner.decisions().to_vec(),
                counts: self.plan_counts(),
                calibrated: planner.is_calibrated(),
            }),
        }
    }

    fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        Some(AutoBackend::plan_counts(self))
    }

    fn preferred_strategy(&self) -> Strategy {
        if self.threads > 1 {
            Strategy::FixedPool {
                threads: self.threads,
            }
        } else {
            Strategy::Sequential
        }
    }

    fn run_workload(&self, workload: &Workload) -> Vec<MatchSet> {
        self.run_with_strategy(workload, auto_strategy(workload.len(), self.threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::QueryRecord;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
        ])
    }

    fn workload() -> Workload {
        Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
                QueryRecord::new("Bxr", 3),
            ],
        }
    }

    fn oracle(ds: &Dataset, w: &Workload) -> Vec<MatchSet> {
        let scan = SequentialScan::new(ds);
        scan.run(SeqVariant::V1Base, w)
    }

    #[test]
    fn every_trait_backend_agrees_with_the_oracle() {
        let ds = dataset();
        let w = workload();
        let expected = oracle(&ds, &w);
        let backends: Vec<Box<dyn Backend + '_>> = vec![
            Box::new(ScanBackend::new(SequentialScan::new(&ds), SeqVariant::V4Flat)),
            Box::new(FilteredScanBackend::new(&ds, Strategy::Sequential)),
            Box::new(SortedScanBackend::new(SequentialScan::new(&ds))),
            Box::new(BitParallelScanBackend::new(SequentialScan::new(&ds))),
            Box::new(TrieBackend::build(&ds, true)),
            Box::new(TrieBackend::build(&ds, false)),
            Box::new(RadixBackend::build(&ds, false, Strategy::Sequential)),
            Box::new(RadixBackend::build_with_freq(&ds, Strategy::Sequential)),
            Box::new(QgramBackend::build(&ds, 2, Strategy::Sequential)),
            Box::new(BucketsBackend::build(&ds, Strategy::Sequential)),
            Box::new(SuffixBackend::build(&ds, Strategy::Sequential)),
            Box::new(BkBackend::build(&ds, Strategy::Sequential)),
            Box::new(AutoBackend::new(&ds, 1)),
            Box::new(AutoBackend::calibrated(&ds, 2, &w)),
        ];
        for b in &backends {
            b.prepare();
            assert_eq!(b.run_workload(&w), expected, "backend {}", b.name());
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 2 },
                Strategy::WorkQueue { threads: 3 },
            ] {
                assert_eq!(
                    b.run_with_strategy(&w, strategy),
                    expected,
                    "backend {} strategy {}",
                    b.name(),
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn auto_counts_every_routed_query() {
        let ds = dataset();
        let w = workload();
        let auto = AutoBackend::new(&ds, 1);
        let _ = auto.run_workload(&w);
        let total: u64 = auto.plan_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, w.len() as u64);
        let diag = auto.diag();
        let plan = diag.plan.expect("auto reports its plan");
        assert_eq!(plan.counts, auto.plan_counts());
        assert!(!plan.decisions.is_empty());
    }

    #[test]
    fn auto_topk_matches_a_fixed_backend() {
        let ds = dataset();
        let auto = AutoBackend::new(&ds, 1);
        let scan = ScanBackend::new(SequentialScan::new(&ds), SeqVariant::V4Flat);
        let (a, _) = auto.search_top_k_with(b"Berlim", 3, 8);
        let (b, _) = scan.search_top_k_with(b"Berlim", 3, 8);
        assert_eq!(a, b);
        assert_eq!(a[0].id, 0);
    }

    #[test]
    fn replan_needs_a_minimum_of_observations_then_swaps() {
        let ds = dataset();
        let w = workload();
        let expected = oracle(&ds, &w);
        let auto = AutoBackend::new(&ds, 1);
        assert!(!auto.replan(), "an empty grid must not swap the table");
        assert_eq!(auto.plan_epoch(), 0);
        // Fill the routed cells past the gate, then close the loop.
        for _ in 0..MIN_CELL_OBSERVATIONS {
            assert_eq!(auto.run_workload(&w), expected);
        }
        assert!(auto.replan(), "a filled grid replans");
        assert_eq!(auto.plan_epoch(), 1);
        assert!(auto.planner().is_calibrated());
        assert_eq!(auto.run_workload(&w), expected, "replanned routing stays exact");
        let nanos: u64 = auto.observed_arm_nanos().iter().map(|(_, n)| n).sum();
        assert!(nanos > 0, "routed queries are timed into the grid");
    }

    #[test]
    fn set_planner_refuses_a_different_candidate_set() {
        let ds = dataset();
        let auto = AutoBackend::new(&ds, 1);
        let snap = auto.planner().snapshot().clone();
        let foreign = Planner::new(snap.clone(), &BackendChoice::ALL);
        assert!(!auto.set_planner(foreign), "candidate sets are fixed at build");
        assert_eq!(auto.plan_epoch(), 0);
        let same = Planner::new(snap, &AutoBackend::DEFAULT_CANDIDATES);
        assert!(auto.set_planner(same));
        assert_eq!(auto.plan_epoch(), 1);
    }

    #[test]
    fn auto_topk_records_into_the_topk_cells() {
        let ds = dataset();
        let auto = AutoBackend::new(&ds, 1);
        let (top, _) = auto.search_top_k_with(b"Berlim", 3, 8);
        assert_eq!(top[0].id, 0);
        let samples = auto.observations().topk_samples();
        let total: u64 = samples.iter().map(|c| c.count).sum();
        assert_eq!(total, 1, "one deepening run = one top-k observation");
    }

    #[test]
    fn sorted_scan_counts_cells() {
        let ds = dataset();
        let sorted = SortedScanBackend::new(SequentialScan::new(&ds));
        sorted.prepare();
        let (_, cells) = sorted.search_counting(b"Berlin", 2);
        assert!(cells > 0);
    }

    #[test]
    fn diag_reports_structures_and_filters() {
        let ds = dataset();
        let radix = RadixBackend::build(&ds, false, Strategy::Sequential);
        let d = radix.diag();
        assert!(d.structure.unwrap().0 > 1);
        assert_eq!(d.filters, vec!["length"]);
        assert!(d.plan.is_none());
        let filtered = FilteredScanBackend::new(&ds, Strategy::Sequential);
        assert_eq!(filtered.diag().filters, vec!["length", "frequency"]);
    }
}
