//! Live ingest: an LSM-shaped mutable engine over the frozen-dataset
//! machinery.
//!
//! Every other backend in this workspace is prepared once from an
//! immutable [`Dataset`] — ideal for benchmark replay, useless for a
//! service that must accept writes. [`LiveEngine`] composes the two
//! results this repository already established into a mutable engine:
//!
//! * the paper's own headline — *flat scans are fast on small sets* —
//!   makes an unsorted append-only **memtable** the natural write
//!   buffer ([`simsearch_scan::flat_search_where`], a V1-style scan
//!   that masks tombstoned slots);
//! * the V7 sorted-prefix scan is the best frozen-set reader, so
//!   flushed records live in immutable **segments**, each a prepared
//!   [`SortedView`] searched by [`simsearch_scan::v7_search_view`];
//! * reads union memtable-first results across segments with the
//!   sharded executor's k-way [`merge_match_sets`] over disjoint,
//!   strictly-increasing global-id tables ([`remap_to_global`]).
//!
//! # Id space and tombstones
//!
//! Every insert is assigned the next global [`RecordId`], monotonically
//! and never reused; at any instant each live id is physically present
//! in exactly one place (the memtable or one segment), which is what
//! makes the k-way merge's disjointness invariant hold. Deletes are
//! tombstones: the id goes into a set that masks memtable slots before
//! the kernel runs and filters segment results after remapping.
//! Tombstones always refer to physically present records — compaction
//! is the only thing that makes a record vanish, and it removes the
//! tombstones it elides in the same atomic swap.
//!
//! # Snapshot semantics
//!
//! All mutable state sits behind one `RwLock`. A read holds the read
//! lock across the whole memtable-scan + segment-fan-out + merge, so
//! every query sees one consistent `(memtable, segments, tombstones)`
//! snapshot — never a partial union, never an id in two places.
//! Writes (insert/delete) are short write-lock critical sections.
//!
//! # Compaction
//!
//! [`LiveEngine::maybe_compact`] runs one step: **memtable → segment**
//! when the memtable reaches [`LsmConfig::memtable_cap`], otherwise the
//! first two segments sharing a size tier (⌊log₂ len⌋) merge
//! **segment × segment**. Both elide tombstoned records. The expensive
//! part — sorting a new [`SortedView`] — happens *outside* the lock on
//! cloned data; the installed swap is a write-lock critical section, so
//! concurrent readers see either the old or the new segment set,
//! atomically. A `Mutex` serialises compactors, which is what makes the
//! plan→build→swap sequence sound: writers may append to the memtable
//! or add tombstones while a compaction builds, but nothing else can
//! remove the frozen prefix or restructure the segment list under it.

use crate::backend::{Backend, BackendDiag};
use crate::planner::{static_cost, BackendChoice};
use crate::sharded::{merge_match_sets, remap_to_global};
use simsearch_data::{Dataset, MatchSet, RecordId, SortedView, StatsSnapshot};
use simsearch_scan::{flat_search_where, v7_search_view, v8_search_view};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The mutation seam: what a serving layer (or a sharded composite)
/// needs from an engine that accepts writes, over and above [`Backend`].
///
/// [`LiveEngine`] is the primitive implementation; a
/// [`crate::sharded::ShardedBackend`] built with live shards implements
/// it too, routing each mutation to the owning shard. Consumers hold an
/// `Arc<dyn MutableBackend>` and stay agnostic of the shard count.
pub trait MutableBackend: Backend {
    /// Appends one record and returns its global id. Ids are assigned
    /// from one dense, monotone, never-reused space — across every
    /// shard when the implementation is a composite.
    fn insert(&self, record: &[u8]) -> RecordId;

    /// Tombstones `id`. Returns `true` when the id named a live record,
    /// `false` when it was absent or already deleted.
    fn delete(&self, id: RecordId) -> bool;

    /// Runs one compaction step somewhere if one is due; returns
    /// whether any work happened. Composites try each shard in turn —
    /// shards compact independently, there is no global compaction
    /// lock.
    fn maybe_compact(&self) -> bool;

    /// Runs [`MutableBackend::maybe_compact`] until no step is due
    /// anywhere; returns the number of steps taken.
    fn compact_to_quiescence(&self) -> u64 {
        let mut steps = 0;
        while MutableBackend::maybe_compact(self) {
            steps += 1;
        }
        steps
    }

    /// Aggregate LSM statistics (summed across shards for composites).
    fn live_stats(&self) -> LiveStats;

    /// Per-shard LSM statistics, in shard order; `None` for unsharded
    /// engines. When `Some`, the entries sum field-wise to
    /// [`MutableBackend::live_stats`].
    fn live_shard_stats(&self) -> Option<Vec<LiveStats>> {
        None
    }
}

/// Tuning for [`LiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Memtable flush threshold: [`LiveEngine::maybe_compact`] freezes
    /// the memtable into a segment once it holds this many slots
    /// (live or tombstoned).
    pub memtable_cap: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self { memtable_cap: 1024 }
    }
}

/// The kernel a live engine's segments answer with. Both arms read the
/// same prepared [`SortedView`] and return byte-identical results (the
/// `v8_oracle` gate), so switching is a pure performance decision —
/// which is what lets [`LiveEngine::replan`] re-pick the arm from the
/// engine's own gauges while queries are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentArm {
    /// V7 LCP-resumable row-stack DP — the default; its banded
    /// early-abort wins short strings and low thresholds.
    Sorted,
    /// V8 Myers bit-parallel sweep — per-word cost independent of `k`;
    /// wins once segments dominate and records are long.
    BitParallel,
}

impl SegmentArm {
    /// Stable short name (`STATS`, `explain`).
    pub fn name(self) -> &'static str {
        match self {
            SegmentArm::Sorted => "scan-sorted",
            SegmentArm::BitParallel => "scan-bitparallel",
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 1 {
            SegmentArm::BitParallel
        } else {
            SegmentArm::Sorted
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            SegmentArm::Sorted => 0,
            SegmentArm::BitParallel => 1,
        }
    }
}

/// One immutable sorted segment: a prepared V7 [`SortedView`] plus the
/// strictly-increasing table mapping its local ids to global ids.
struct Segment {
    /// The segment's records, local ids `0..n` in ascending global-id
    /// order (so `globals` is strictly increasing and remapping a local
    /// result preserves id order — the merge invariant).
    data: Dataset,
    /// The prepared sorted view over `data`.
    view: SortedView,
    /// Local id `i` ↔ global id `globals[i]`.
    globals: Vec<RecordId>,
}

impl Segment {
    /// Builds a segment from records already in ascending global-id
    /// order. Returns `None` for the empty set (no empty segments are
    /// ever installed).
    fn build(data: Dataset, globals: Vec<RecordId>) -> Option<Arc<Self>> {
        debug_assert_eq!(data.len(), globals.len());
        debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));
        if globals.is_empty() {
            return None;
        }
        let view = SortedView::build(&data);
        Some(Arc::new(Self {
            data,
            view,
            globals,
        }))
    }

    /// Size tier for segment×segment compaction: ⌊log₂ len⌋.
    fn tier(&self) -> u32 {
        usize::BITS - 1 - self.globals.len().leading_zeros()
    }

    /// Search with the engine's current arm, remapped to global ids
    /// (tombstones are the caller's concern — they filter *after*
    /// remapping).
    fn search(&self, arm: SegmentArm, query: &[u8], k: u32) -> (MatchSet, u64) {
        let (local, cells) = match arm {
            SegmentArm::Sorted => v7_search_view(&self.view, query, k),
            SegmentArm::BitParallel => v8_search_view(&self.view, query, k),
        };
        (remap_to_global(&local, &self.globals), cells)
    }
}

/// The mutable state, swapped atomically under one `RwLock`.
struct LiveInner {
    /// Append-only memtable arena, insertion order.
    mem: Dataset,
    /// Global id of each memtable slot (strictly increasing: slots are
    /// appended with fresh ids and only compaction removes a prefix).
    mem_ids: Vec<RecordId>,
    /// Deleted ids still physically present in the memtable or a
    /// segment. Invariant: every member is present somewhere.
    tombstones: HashSet<RecordId>,
    /// Immutable segments, each over a disjoint slice of the id space.
    segments: Vec<Arc<Segment>>,
    /// Next global id to assign.
    next_id: RecordId,
}

/// A point-in-time summary of the engine, for `STATS` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Memtable slots (live + tombstoned-but-unflushed).
    pub memtable_len: usize,
    /// Number of immutable segments.
    pub segments: usize,
    /// Records physically held by segments (including tombstoned ones
    /// not yet elided by compaction).
    pub segment_records: usize,
    /// Tombstones not yet elided.
    pub tombstones: usize,
    /// Logically live records (visible to queries).
    pub live_records: usize,
    /// Total inserts accepted.
    pub inserts: u64,
    /// Total deletes that hit a live record.
    pub deletes: u64,
    /// Compaction steps completed (flushes + merges).
    pub compactions: u64,
}

impl LiveStats {
    /// Field-wise accumulation, for summing per-shard stats into a
    /// composite aggregate.
    pub fn accumulate(&mut self, other: &LiveStats) {
        self.memtable_len += other.memtable_len;
        self.segments += other.segments;
        self.segment_records += other.segment_records;
        self.tombstones += other.tombstones;
        self.live_records += other.live_records;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.compactions += other.compactions;
    }
}

/// The live-ingest engine: memtable + tombstones in front of immutable
/// sorted segments. Implements [`Backend`], so it slots into the same
/// serving/search seam as every frozen engine; the mutation surface
/// ([`LiveEngine::insert`], [`LiveEngine::delete`],
/// [`LiveEngine::maybe_compact`]) is its own.
pub struct LiveEngine {
    inner: RwLock<LiveInner>,
    cfg: LsmConfig,
    /// Serialises compaction's plan→build→swap sequence.
    compact_gate: Mutex<()>,
    /// The segment kernel ([`SegmentArm`] as a byte), swapped by
    /// [`LiveEngine::replan`]; reads are one relaxed load per query.
    plan: AtomicU8,
    /// Arm swaps since build.
    plan_epoch: AtomicU64,
    compactions: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
}

impl LiveEngine {
    /// An empty engine.
    pub fn new(cfg: LsmConfig) -> Self {
        Self {
            inner: RwLock::new(LiveInner {
                mem: Dataset::new(),
                mem_ids: Vec::new(),
                tombstones: HashSet::new(),
                segments: Vec::new(),
                next_id: 0,
            }),
            cfg,
            compact_gate: Mutex::new(()),
            plan: AtomicU8::new(SegmentArm::Sorted.as_u8()),
            plan_epoch: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    /// Seeds an engine from a frozen dataset: record `i` gets global id
    /// `i`, and the whole load is flushed into one prepared segment so
    /// serving starts on the V7 path rather than a giant memtable.
    pub fn from_dataset(dataset: &Dataset, cfg: LsmConfig) -> Self {
        let globals: Vec<RecordId> = (0..dataset.len() as u32).collect();
        let next_id = dataset.len() as u32;
        Self::seeded(dataset.clone(), globals, next_id, cfg)
    }

    /// Seeds an engine holding an arbitrary slice of a larger id space:
    /// `data` record `i` gets global id `globals[i]` (strictly
    /// increasing), and fresh inserts continue from `next_id`. This is
    /// how a sharded composite loads each shard with its partition of
    /// the seed dataset while keeping one global id space.
    pub fn seeded(
        data: Dataset,
        globals: Vec<RecordId>,
        next_id: RecordId,
        cfg: LsmConfig,
    ) -> Self {
        assert_eq!(data.len(), globals.len(), "one global id per record");
        assert!(
            globals.windows(2).all(|w| w[0] < w[1]),
            "seed globals must be strictly increasing"
        );
        assert!(
            globals.last().is_none_or(|&g| g < next_id),
            "next_id must be past every seeded id"
        );
        let seeded = globals.len() as u64;
        let engine = Self::new(cfg);
        {
            let mut inner = engine.inner.write().expect("lsm lock");
            inner.next_id = next_id;
            if let Some(segment) = Segment::build(data, globals) {
                inner.segments.push(segment);
            }
        }
        engine.inserts.store(seeded, Ordering::Relaxed);
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> LsmConfig {
        self.cfg
    }

    /// Appends one record to the memtable and returns its global id.
    /// Ids are assigned monotonically and never reused.
    pub fn insert(&self, record: &[u8]) -> RecordId {
        let mut inner = self.inner.write().expect("lsm lock");
        let id = inner.next_id;
        Self::append_locked(&mut inner, &self.inserts, record, id);
        id
    }

    /// Appends one record under an externally assigned global id, for
    /// composites that allocate ids centrally and route records to
    /// shards. `id` must be at least this engine's next id (gaps are
    /// fine — they belong to other shards); the memtable id table stays
    /// strictly increasing, so every read-path invariant is preserved.
    pub fn insert_with_id(&self, record: &[u8], id: RecordId) {
        let mut inner = self.inner.write().expect("lsm lock");
        assert!(
            id >= inner.next_id,
            "externally assigned id {id} reuses this shard's id space (next={})",
            inner.next_id
        );
        Self::append_locked(&mut inner, &self.inserts, record, id);
    }

    fn append_locked(inner: &mut LiveInner, inserts: &AtomicU64, record: &[u8], id: RecordId) {
        assert!(id < u32::MAX, "global id space exhausted");
        inner.next_id = id + 1;
        inner.mem.push(record);
        inner.mem_ids.push(id);
        inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Tombstones `id`. Returns `true` when the id named a live record,
    /// `false` when it was absent or already deleted.
    pub fn delete(&self, id: RecordId) -> bool {
        let mut inner = self.inner.write().expect("lsm lock");
        if inner.tombstones.contains(&id) {
            return false;
        }
        let present = inner.mem_ids.binary_search(&id).is_ok()
            || inner
                .segments
                .iter()
                .any(|s| s.globals.binary_search(&id).is_ok());
        if !present {
            return false;
        }
        inner.tombstones.insert(id);
        self.deletes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// One consistent threshold search across the memtable and every
    /// segment: flat scan over live memtable slots, V7 over each
    /// segment, tombstone filtering, then the k-way merge. The read
    /// lock is held across the whole union, so the result reflects one
    /// atomic `(memtable, segments, tombstones)` snapshot.
    fn search_snapshot(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        let arm = self.segment_arm();
        let inner = self.inner.read().expect("lsm lock");
        let mut parts = Vec::with_capacity(inner.segments.len() + 1);
        // Memtable first: tombstones mask slots before the kernel runs.
        let mem_local = flat_search_where(&inner.mem, query, k, |slot| {
            !inner.tombstones.contains(&inner.mem_ids[slot as usize])
        });
        parts.push(remap_to_global(&mem_local, &inner.mem_ids));
        let mut cells = 0u64;
        for segment in &inner.segments {
            let (remapped, segment_cells) = segment.search(arm, query, k);
            cells += segment_cells;
            // Segments hold tombstoned records until compaction elides
            // them; filter after remapping to global ids.
            parts.push(MatchSet::from_unsorted(
                remapped
                    .iter()
                    .filter(|m| !inner.tombstones.contains(&m.id))
                    .copied()
                    .collect(),
            ));
        }
        (merge_match_sets(&parts), cells)
    }

    /// A point-in-time summary (one read-lock acquisition).
    pub fn stats(&self) -> LiveStats {
        let inner = self.inner.read().expect("lsm lock");
        let segment_records: usize = inner.segments.iter().map(|s| s.globals.len()).sum();
        LiveStats {
            memtable_len: inner.mem_ids.len(),
            segments: inner.segments.len(),
            segment_records,
            tombstones: inner.tombstones.len(),
            // Tombstones only ever name present records, so live =
            // physically present − tombstoned.
            live_records: inner.mem_ids.len() + segment_records - inner.tombstones.len(),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Runs one compaction step if one is due; returns whether any work
    /// happened. Flush has priority (a full memtable is the latency
    /// hazard); otherwise the first two segments sharing a size tier
    /// merge. Call in a loop to compact to quiescence.
    ///
    /// The heavy work — sorting the new segment — runs without holding
    /// the engine lock; only the final swap takes the write lock, so
    /// concurrent readers always see either the old or the new segment
    /// set in full.
    pub fn maybe_compact(&self) -> bool {
        let _gate = self.compact_gate.lock().expect("compaction gate");

        // Plan: snapshot what to compact under a read lock.
        enum Plan {
            Flush {
                frozen: Dataset,
                ids: Vec<RecordId>,
                tombs: HashSet<RecordId>,
            },
            Merge {
                a: Arc<Segment>,
                b: Arc<Segment>,
                tombs: HashSet<RecordId>,
            },
        }
        let plan = {
            let inner = self.inner.read().expect("lsm lock");
            if !inner.mem_ids.is_empty() && inner.mem_ids.len() >= self.cfg.memtable_cap {
                Plan::Flush {
                    frozen: inner.mem.clone(),
                    ids: inner.mem_ids.clone(),
                    tombs: inner.tombstones.clone(),
                }
            } else {
                let mut pair = None;
                'outer: for i in 0..inner.segments.len() {
                    for j in i + 1..inner.segments.len() {
                        if inner.segments[i].tier() == inner.segments[j].tier() {
                            pair = Some((i, j));
                            break 'outer;
                        }
                    }
                }
                match pair {
                    Some((i, j)) => Plan::Merge {
                        a: Arc::clone(&inner.segments[i]),
                        b: Arc::clone(&inner.segments[j]),
                        tombs: inner.tombstones.clone(),
                    },
                    None => return false,
                }
            }
        };

        // Build the replacement segment lock-free, then swap.
        match plan {
            Plan::Flush {
                frozen,
                ids,
                tombs,
            } => {
                let frozen_len = ids.len();
                let mut data = Dataset::with_capacity(frozen.len(), frozen.arena_len());
                let mut globals = Vec::with_capacity(frozen.len());
                let mut elided: Vec<RecordId> = Vec::new();
                // Memtable slots are already in ascending global-id
                // order; tombstoned slots are elided here and their
                // tombstones dropped at swap time.
                for (slot, id) in ids.iter().enumerate() {
                    if tombs.contains(id) {
                        elided.push(*id);
                    } else {
                        data.push(frozen.get(slot as u32));
                        globals.push(*id);
                    }
                }
                let segment = Segment::build(data, globals);

                let mut inner = self.inner.write().expect("lsm lock");
                // The compaction gate guarantees the frozen prefix is
                // still the memtable's prefix: writers only append.
                debug_assert!(inner.mem_ids.len() >= frozen_len);
                debug_assert_eq!(&inner.mem_ids[..frozen_len], &ids[..]);
                let rest: Dataset = (frozen_len..inner.mem_ids.len())
                    .map(|slot| inner.mem.get(slot as u32).to_vec())
                    .collect();
                inner.mem = rest;
                inner.mem_ids.drain(..frozen_len);
                if let Some(segment) = segment {
                    inner.segments.push(segment);
                }
                for id in &elided {
                    inner.tombstones.remove(id);
                }
                self.compactions.fetch_add(1, Ordering::Relaxed);
                true
            }
            Plan::Merge { a, b, tombs } => {
                // Two-pointer merge of two strictly-increasing id
                // tables (disjoint by the one-place-per-id invariant),
                // eliding tombstoned records.
                let mut data =
                    Dataset::with_capacity(a.data.len() + b.data.len(), a.data.arena_len() + b.data.arena_len());
                let mut globals = Vec::with_capacity(a.globals.len() + b.globals.len());
                let mut elided: Vec<RecordId> = Vec::new();
                let (mut i, mut j) = (0usize, 0usize);
                loop {
                    let take_a = match (a.globals.get(i), b.globals.get(j)) {
                        (Some(x), Some(y)) => x < y,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let (seg, pos) = if take_a { (&*a, i) } else { (&*b, j) };
                    let id = seg.globals[pos];
                    if tombs.contains(&id) {
                        elided.push(id);
                    } else {
                        data.push(seg.data.get(pos as u32));
                        globals.push(id);
                    }
                    if take_a {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                let merged = Segment::build(data, globals);

                let mut inner = self.inner.write().expect("lsm lock");
                // Only compaction restructures the segment list, and
                // the gate serialises compactions — both inputs must
                // still be installed.
                let pos_a = inner
                    .segments
                    .iter()
                    .position(|s| Arc::ptr_eq(s, &a))
                    .expect("merge input a vanished");
                inner.segments.remove(pos_a);
                let pos_b = inner
                    .segments
                    .iter()
                    .position(|s| Arc::ptr_eq(s, &b))
                    .expect("merge input b vanished");
                inner.segments.remove(pos_b);
                if let Some(merged) = merged {
                    inner.segments.push(merged);
                }
                for id in &elided {
                    inner.tombstones.remove(id);
                }
                self.compactions.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Runs [`LiveEngine::maybe_compact`] until no step is due.
    pub fn compact_to_quiescence(&self) -> u64 {
        let mut steps = 0;
        while self.maybe_compact() {
            steps += 1;
        }
        steps
    }

    /// The kernel segments currently answer with.
    pub fn segment_arm(&self) -> SegmentArm {
        SegmentArm::from_u8(self.plan.load(Ordering::Relaxed))
    }

    /// Arm swaps since build (0 until the first effective replan).
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch.load(Ordering::Relaxed)
    }

    /// One self-tuning tick against this engine's *own* gauges: re-picks
    /// the segment kernel from the current memtable/segment shape and
    /// swaps it atomically (a relaxed byte store — in-flight queries
    /// finish on the arm they loaded). Returns whether the arm changed.
    ///
    /// The rule mirrors the planner's V7-vs-V8 crossover, scoped to one
    /// shard's gauges: the bit-parallel sweep is preferred only when
    /// the segments dominate the read path (a freshly-flushed or
    /// compacted shard) *and* the per-word sweep undercuts the banded
    /// DP at the shard's own mean record length — a memtable-heavy
    /// neighbour keeps V7 under its flat-scan-dominated mix. Deletes
    /// shift `live_records` and compactions shift the segment/memtable
    /// split, so the decision genuinely drifts with churn.
    pub fn replan(&self) -> bool {
        let (memtable_len, segment_records, segment_bytes) = {
            let inner = self.inner.read().expect("lsm lock");
            let records: usize = inner.segments.iter().map(|s| s.globals.len()).sum();
            let bytes: usize = inner.segments.iter().map(|s| s.data.arena_len()).sum();
            (inner.mem_ids.len(), records, bytes)
        };
        let next = Self::preferred_arm(memtable_len, segment_records, segment_bytes);
        let previous = self.plan.swap(next.as_u8(), Ordering::Relaxed);
        let changed = previous != next.as_u8();
        if changed {
            self.plan_epoch.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    /// The deterministic arm rule behind [`LiveEngine::replan`] —
    /// a pure function of the gauges, so tests can pin the crossover.
    fn preferred_arm(
        memtable_len: usize,
        segment_records: usize,
        segment_bytes: usize,
    ) -> SegmentArm {
        // Segments must dominate the read path before a segment-kernel
        // switch can pay for itself (hysteresis against flapping on a
        // half-filled memtable).
        if segment_records == 0 || segment_records < 4 * memtable_len {
            return SegmentArm::Sorted;
        }
        // The Myers sweep advances 64-cell words; it amortises its
        // block setup only once a typical record spans at least one
        // full word — exactly the long-string regime where the banded
        // DP's row count grows with `k` (the V8 figures: 4.3× on
        // 104-char DNA reads, a wash on 10-char city names).
        let mean = segment_bytes / segment_records;
        if mean >= 64 {
            SegmentArm::BitParallel
        } else {
            SegmentArm::Sorted
        }
    }
}

impl Backend for LiveEngine {
    fn name(&self) -> String {
        format!("live[lsm/cap={}]", self.cfg.memtable_cap)
    }

    fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_snapshot(query, k).0
    }

    fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        self.search_snapshot(query, k)
    }

    fn cost_hint(&self, snapshot: &StatsSnapshot, query_len: usize, k: u32) -> f64 {
        // The bulk of the data lives in sorted segments; the memtable
        // rides on top as a small flat surcharge.
        static_cost(snapshot, BackendChoice::ScanSorted, query_len, k)
    }

    fn diag(&self) -> BackendDiag {
        let stats = self.stats();
        let inner = self.inner.read().expect("lsm lock");
        let bytes: usize = inner.mem.arena_len()
            + inner
                .segments
                .iter()
                .map(|s| s.data.arena_len() * 2 + s.globals.len() * 4)
                .sum::<usize>();
        BackendDiag {
            name: self.name(),
            structure: Some((stats.segments, bytes)),
            filters: vec!["length", "tombstone"],
            plan: None,
        }
    }
}

impl MutableBackend for LiveEngine {
    fn insert(&self, record: &[u8]) -> RecordId {
        LiveEngine::insert(self, record)
    }

    fn delete(&self, id: RecordId) -> bool {
        LiveEngine::delete(self, id)
    }

    fn maybe_compact(&self) -> bool {
        LiveEngine::maybe_compact(self)
    }

    fn compact_to_quiescence(&self) -> u64 {
        LiveEngine::compact_to_quiescence(self)
    }

    fn live_stats(&self) -> LiveStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_backend, EngineKind};
    use simsearch_data::Match;
    use simsearch_scan::SeqVariant;

    /// The oracle: a fresh V1 engine over the surviving records, its
    /// local ids remapped back through the survivor table.
    fn oracle(survivors: &[(RecordId, Vec<u8>)], query: &[u8], k: u32) -> MatchSet {
        let data = Dataset::from_records(survivors.iter().map(|(_, r)| r.as_slice()));
        let globals: Vec<RecordId> = survivors.iter().map(|(id, _)| *id).collect();
        let v1 = build_backend(&data, EngineKind::Scan(SeqVariant::V1Base));
        remap_to_global(&v1.search(query, k), &globals)
    }

    #[test]
    fn empty_engine_answers_empty() {
        let engine = LiveEngine::new(LsmConfig::default());
        assert_eq!(engine.search(b"anything", 3), MatchSet::default());
        assert!(!engine.maybe_compact());
        assert_eq!(engine.stats().live_records, 0);
    }

    #[test]
    fn inserts_become_visible_and_ids_are_monotone() {
        let engine = LiveEngine::new(LsmConfig::default());
        let a = engine.insert(b"Berlin");
        let b = engine.insert(b"Bern");
        assert_eq!((a, b), (0, 1));
        let got = engine.search(b"Berlin", 2);
        assert_eq!(got.ids(), vec![0, 1]);
    }

    #[test]
    fn deletes_mask_memtable_and_segment_records() {
        let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
        engine.insert(b"Berlin");
        engine.insert(b"Bern");
        assert!(engine.maybe_compact(), "flush at cap");
        engine.insert(b"Bonn");
        assert!(engine.delete(0), "segment record");
        assert!(engine.delete(2), "memtable record");
        assert!(!engine.delete(0), "double delete");
        assert!(!engine.delete(99), "absent id");
        let got = engine.search(b"Bern", 2);
        assert_eq!(got.ids(), vec![1]);
    }

    #[test]
    fn seeded_engine_matches_its_source_dataset() {
        let data = Dataset::from_records(["Berlin", "Bern", "", "Ulm", "Bonn"]);
        let engine = LiveEngine::from_dataset(&data, LsmConfig::default());
        let v1 = build_backend(&data, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Bern", "", "Urm"] {
            for k in 0..4 {
                assert_eq!(
                    engine.search(q.as_bytes(), k),
                    v1.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
        assert_eq!(engine.stats().segments, 1);
        assert_eq!(engine.stats().memtable_len, 0);
    }

    #[test]
    fn churn_with_compaction_matches_the_v1_rebuild_oracle() {
        let engine = LiveEngine::new(LsmConfig { memtable_cap: 3 });
        let mut survivors: Vec<(RecordId, Vec<u8>)> = Vec::new();
        let words: &[&[u8]] = &[
            b"Berlin", b"Bern", b"Bonn", b"Ulm", b"", b"Berlingen", b"B", b"Ulmen", b"Bermen",
        ];
        for (round, w) in words.iter().enumerate() {
            let id = engine.insert(w);
            survivors.push((id, w.to_vec()));
            if round % 3 == 2 {
                let victim = survivors.remove(round % survivors.len()).0;
                assert!(engine.delete(victim));
            }
            engine.maybe_compact();
            for q in ["Bern", "Ulm", ""] {
                for k in 0..3 {
                    assert_eq!(
                        engine.search(q.as_bytes(), k),
                        oracle(&survivors, q.as_bytes(), k),
                        "round {round} q={q} k={k}"
                    );
                }
            }
        }
        engine.compact_to_quiescence();
        let stats = engine.stats();
        assert!(stats.compactions > 0);
        assert_eq!(stats.live_records, survivors.len());
        for q in ["Bern", "Ulm", ""] {
            assert_eq!(engine.search(q.as_bytes(), 2), oracle(&survivors, q.as_bytes(), 2));
        }
    }

    #[test]
    fn tombstones_are_elided_by_both_compaction_kinds() {
        let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
        engine.insert(b"aa");
        engine.insert(b"ab");
        assert!(engine.delete(1));
        assert!(engine.maybe_compact(), "flush elides the memtable tombstone");
        assert_eq!(engine.stats().tombstones, 0);
        assert_eq!(engine.stats().segment_records, 1);

        engine.insert(b"ba");
        engine.insert(b"bb");
        assert!(engine.delete(2));
        assert!(engine.maybe_compact(), "second flush");
        assert_eq!(engine.stats().segments, 2, "two same-tier segments");
        assert!(engine.delete(0), "tombstone a segment record");
        assert!(engine.maybe_compact(), "tiered merge elides it");
        let stats = engine.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.tombstones, 0);
        assert_eq!(stats.segment_records, 1);
        assert_eq!(engine.search(b"bb", 1).ids(), vec![3]);
    }

    #[test]
    fn replan_prefers_bitparallel_only_when_segments_dominate_long_records() {
        // Long DNA-like records, all flushed: segments dominate and the
        // per-word sweep undercuts the banded DP — the arm flips once
        // (epoch 1) and answers stay oracle-identical.
        let long: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                (0..200u32)
                    .map(|j| b"ACGT"[((i * 7 + j) % 4) as usize])
                    .collect()
            })
            .collect();
        let engine = LiveEngine::new(LsmConfig { memtable_cap: 6 });
        let mut survivors = Vec::new();
        for r in &long {
            let id = engine.insert(r);
            survivors.push((id, r.clone()));
        }
        assert!(engine.maybe_compact(), "flush all six");
        assert_eq!(engine.segment_arm(), SegmentArm::Sorted, "default arm");
        assert!(engine.replan(), "flushed long records flip to V8");
        assert_eq!(engine.segment_arm(), SegmentArm::BitParallel);
        assert_eq!(engine.plan_epoch(), 1);
        assert!(!engine.replan(), "stable gauges, no second flip");
        let q = &long[0][..150];
        for k in [0, 4, 16] {
            assert_eq!(engine.search(q, k), oracle(&survivors, q, k), "k={k}");
        }

        // A memtable-heavy engine with the same records stays on V7.
        let heavy = LiveEngine::new(LsmConfig { memtable_cap: 1024 });
        for r in &long {
            heavy.insert(r);
        }
        assert!(!heavy.replan(), "memtable-heavy shard keeps the flat mix");
        assert_eq!(heavy.segment_arm(), SegmentArm::Sorted);

        // Short city-like records never flip even when fully flushed.
        let city = LiveEngine::new(LsmConfig { memtable_cap: 4 });
        for w in [&b"Berlin"[..], b"Bern", b"Bonn", b"Ulm"] {
            city.insert(w);
        }
        assert!(city.maybe_compact());
        assert!(!city.replan(), "short records stay on the banded DP");
        assert_eq!(city.plan_epoch(), 0);
    }

    #[test]
    fn topk_agrees_with_a_v1_rebuild() {
        let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
        let mut survivors = Vec::new();
        for w in [&b"Berlin"[..], b"Bern", b"Bonn", b"Ulm", b"Ber"] {
            let id = engine.insert(w);
            survivors.push((id, w.to_vec()));
            engine.maybe_compact();
        }
        assert!(engine.delete(2));
        survivors.retain(|(id, _)| *id != 2);
        let data = Dataset::from_records(survivors.iter().map(|(_, r)| r.as_slice()));
        let globals: Vec<RecordId> = survivors.iter().map(|(id, _)| *id).collect();
        let v1 = build_backend(&data, EngineKind::Scan(SeqVariant::V1Base));
        for k in [1usize, 3, 10] {
            let (want_local, _) = v1.search_top_k_with(b"Bern", k, 16);
            let want: Vec<Match> = want_local
                .iter()
                .map(|m| Match::new(globals[m.id as usize], m.distance))
                .collect();
            let (got, _) = engine.search_top_k_with(b"Bern", k, 16);
            assert_eq!(got, want, "k={k}");
        }
    }
}
