//! Experiment timing: the measurement protocol of the paper's §5.2.
//!
//! The paper measures, per approach and dataset, the *wall-clock* time to
//! compute all results for 100, 500 and 1,000 queries — explicitly wall
//! time, not CPU time, because parallel rungs would otherwise look worse
//! than they are; and explicitly excluding file loading and index
//! construction. [`measure_prefixes`] reproduces that: the engine is
//! built beforehand, the workload prefixes are timed.

use crate::engine::SearchEngine;
use simsearch_data::{MatchSet, Workload};
use std::time::{Duration, Instant};

/// The paper's query-count columns.
pub const QUERY_COUNTS: [usize; 3] = [100, 500, 1_000];

/// Times a closure, returning its result and the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// One measured cell: a query count and the wall time to execute that
/// many queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Number of queries executed.
    pub queries: usize,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Total matches returned (a cheap checksum of result equivalence
    /// across approaches).
    pub total_matches: usize,
}

impl Measurement {
    /// Seconds, as the paper's tables print them.
    pub fn secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }
}

/// Times `engine` on each prefix of `workload` given by `counts`
/// (clamped to the workload length).
pub fn measure_prefixes(
    engine: &SearchEngine<'_>,
    workload: &Workload,
    counts: &[usize],
) -> Vec<Measurement> {
    counts
        .iter()
        .map(|&n| {
            let prefix = workload.prefix(n.min(workload.len()));
            let (results, wall) = time(|| engine.run(&prefix));
            Measurement {
                queries: prefix.len(),
                wall,
                total_matches: results.iter().map(MatchSet::len).sum(),
            }
        })
        .collect()
}

/// Times `engine` on a subsample of the workload (every `stride`-th
/// query) and linearly extrapolates to the full prefix — used only for
/// the prohibitively slow naive DNA rung, which the paper itself only
/// estimates ("≈ half day"). The extrapolation is labelled as such by
/// the caller.
pub fn measure_extrapolated(
    engine: &SearchEngine<'_>,
    workload: &Workload,
    count: usize,
    stride: usize,
) -> Measurement {
    assert!(stride >= 1);
    let count = count.min(workload.len());
    let sampled: Vec<_> = workload.queries[..count]
        .iter()
        .step_by(stride)
        .cloned()
        .collect();
    let sample_len = sampled.len();
    let sample = Workload { queries: sampled };
    let (results, wall) = time(|| engine.run(&sample));
    let scale = count as f64 / sample_len.max(1) as f64;
    Measurement {
        queries: count,
        wall: Duration::from_secs_f64(wall.as_secs_f64() * scale),
        total_matches: results.iter().map(MatchSet::len).sum(),
    }
}

/// Per-threshold timing breakdown: groups a workload's queries by their
/// `k` and times each group separately. The paper aggregates across its
/// threshold cycle; this view shows *where* each approach spends its
/// time (e.g. `k = 0` queries are nearly free on a trie but still cost a
/// full pass on a scan).
pub fn measure_per_threshold(
    engine: &SearchEngine<'_>,
    workload: &Workload,
) -> Vec<(u32, Measurement)> {
    let mut thresholds: Vec<u32> = workload.iter().map(|q| q.threshold).collect();
    thresholds.sort_unstable();
    thresholds.dedup();
    thresholds
        .into_iter()
        .map(|k| {
            let sub = Workload {
                queries: workload
                    .iter()
                    .filter(|q| q.threshold == k)
                    .cloned()
                    .collect(),
            };
            let (results, wall) = time(|| engine.run(&sub));
            (
                k,
                Measurement {
                    queries: sub.len(),
                    wall,
                    total_matches: results.iter().map(MatchSet::len).sum(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use simsearch_data::{Dataset, QueryRecord};
    use simsearch_scan::SeqVariant;

    fn setup() -> (Dataset, Workload) {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Bonn"]);
        let w = Workload {
            queries: (0..20)
                .map(|i| QueryRecord::new(if i % 2 == 0 { "Bern" } else { "Ulm" }, 1))
                .collect(),
        };
        (ds, w)
    }

    #[test]
    fn measures_each_prefix() {
        let (ds, w) = setup();
        let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        let ms = measure_prefixes(&engine, &w, &[5, 10, 20]);
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].queries, 5);
        assert_eq!(ms[2].queries, 20);
        assert!(ms.iter().all(|m| m.total_matches > 0));
    }

    #[test]
    fn prefix_counts_are_clamped() {
        let (ds, w) = setup();
        let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        let ms = measure_prefixes(&engine, &w, &[1000]);
        assert_eq!(ms[0].queries, 20);
    }

    #[test]
    fn extrapolation_scales_time_and_keeps_count() {
        let (ds, w) = setup();
        let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let m = measure_extrapolated(&engine, &w, 20, 4);
        assert_eq!(m.queries, 20);
        // 5 of 20 queries actually ran; wall was scaled by 4.
        assert!(m.wall >= Duration::ZERO);
    }

    #[test]
    fn per_threshold_covers_every_query() {
        let (ds, mut w) = setup();
        // Mix thresholds 0 and 2.
        for (i, q) in w.queries.iter_mut().enumerate() {
            q.threshold = if i % 2 == 0 { 0 } else { 2 };
        }
        let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        let per_k = measure_per_threshold(&engine, &w);
        assert_eq!(per_k.len(), 2);
        assert_eq!(per_k[0].0, 0);
        assert_eq!(per_k[1].0, 2);
        assert_eq!(per_k.iter().map(|(_, m)| m.queries).sum::<usize>(), w.len());
    }

    #[test]
    fn time_reports_elapsed() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }
}
