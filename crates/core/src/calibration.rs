//! Persisted planner calibration: convert a measured [`Planner`] to and
//! from the on-disk [`CalibrationRecord`] of the index dump format.
//!
//! The self-tuning serve loop (§16) learns per-(arm, class) cost
//! multipliers from live latency histograms. Those multipliers are
//! worth keeping across restarts — the first minutes of a freshly
//! started daemon otherwise route with the static analytical model
//! until the observation grid refills. This module persists the
//! calibrated decision state *next to the index* via the version-3
//! radix dump format and restores it with a strict validity check: the
//! record carries the [`StatsSnapshot`] it was measured against, and a
//! loader that computes a different snapshot over its live dataset
//! discards the record and falls back to the static table. A stale or
//! foreign calibration is silently ignored, never an error — routing
//! quality degrades gracefully to the analytical model, it does not
//! take the daemon down.
//!
//! Arm identity crosses the disk boundary by *name* (the stable
//! [`BackendChoice::name`] strings), not by enum discriminant, so a
//! record written by a build with a different arm roster is rejected
//! instead of silently mapping multipliers onto the wrong arms.

use crate::planner::{BackendChoice, Planner};
use simsearch_data::{Dataset, StatsSnapshot};
use simsearch_index::persist::{load_radix_full, save_radix_with_calibration, CalibrationRecord};
use simsearch_index::radix;
use std::io;
use std::path::Path;

/// Extracts the persistable calibration state of a planner: its full
/// decision-table multipliers (threshold classes and the separate top-k
/// curve) keyed by arm name, stamped with the snapshot it models.
pub fn planner_to_record(planner: &Planner) -> CalibrationRecord {
    CalibrationRecord {
        snapshot: planner.snapshot().clone(),
        arms: BackendChoice::ALL.iter().map(|c| c.name().to_string()).collect(),
        class_multipliers: planner
            .class_multipliers()
            .iter()
            .map(|row| row.to_vec())
            .collect(),
        topk_multipliers: planner.topk_multipliers().to_vec(),
    }
}

/// Rebuilds a calibrated planner from a restored record, or `None` when
/// the record does not apply to the dataset being served:
///
/// * the embedded snapshot differs from `fresh` (the data changed —
///   yesterday's latencies were measured on a different distribution);
/// * the arm roster differs in count, name, or order from this build's
///   [`BackendChoice::ALL`];
/// * the multiplier table has the wrong shape or invalid values
///   (checked again by [`Planner::from_calibrated_rows`]).
///
/// `None` means "route with the static table", never a hard failure.
pub fn planner_from_record(
    record: &CalibrationRecord,
    fresh: &StatsSnapshot,
    candidates: &[BackendChoice],
) -> Option<Planner> {
    if &record.snapshot != fresh {
        return None;
    }
    if record.arms.len() != BackendChoice::COUNT
        || !record
            .arms
            .iter()
            .zip(BackendChoice::ALL.iter())
            .all(|(name, choice)| name == choice.name())
    {
        return None;
    }
    let class_multipliers = record
        .class_multipliers
        .iter()
        .map(|row| <[f64; BackendChoice::COUNT]>::try_from(row.as_slice()).ok())
        .collect::<Option<Vec<_>>>()?;
    let topk_multipliers =
        <[f64; BackendChoice::COUNT]>::try_from(record.topk_multipliers.as_slice()).ok()?;
    Planner::from_calibrated_rows(fresh.clone(), candidates, class_multipliers, topk_multipliers)
}

/// Persists a calibrated planner next to a freshly built radix index
/// for `dataset` (the v3 dump: tree + stats snapshot + calibration).
///
/// # Errors
/// Any underlying I/O error, or `InvalidData` if the planner's
/// multipliers are outside the format's structural bounds (which a
/// planner built by this crate never produces).
pub fn save_calibration(path: &Path, dataset: &Dataset, planner: &Planner) -> io::Result<()> {
    let trie = radix::build(dataset);
    save_radix_with_calibration(
        path,
        &trie,
        Some(planner.snapshot()),
        Some(&planner_to_record(planner)),
    )
}

/// Loads persisted calibration and rebuilds the planner it describes,
/// or `None` when the file is missing, unreadable, an older format, has
/// no calibration section, or fails [`planner_from_record`]'s checks.
/// Every failure mode is a clean fallback to static routing.
pub fn load_calibration(
    path: &Path,
    fresh: &StatsSnapshot,
    candidates: &[BackendChoice],
) -> Option<Planner> {
    let (_, _, record) = load_radix_full(path).ok()?;
    planner_from_record(&record?, fresh, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AutoBackend;
    use crate::planner::{CellSample, MAX_K_CLASS, NUM_LEN_CLASSES};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simsearch-calib-{}-{name}", std::process::id()))
    }

    /// A planner whose multipliers are all measured (not 1.0): every
    /// cell gets a synthetic sample skewed per arm.
    fn measured_planner(dataset: &Dataset) -> Planner {
        let snapshot = StatsSnapshot::compute(dataset);
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let mut cells = Vec::with_capacity(rows);
        for row in 0..rows {
            let mut arms = [CellSample::default(); BackendChoice::COUNT];
            for (i, cell) in arms.iter_mut().enumerate() {
                cell.nanos = 1_000 * (row as u64 + 1) * (i as u64 + 2);
                cell.predicted = 500 * (row as u64 + 1);
                cell.count = 64;
            }
            cells.push(arms);
        }
        let mut topk = [CellSample::default(); BackendChoice::COUNT];
        for (i, cell) in topk.iter_mut().enumerate() {
            cell.nanos = 7_000 + 311 * i as u64;
            cell.predicted = 900;
            cell.count = 64;
        }
        Planner::with_class_samples(
            snapshot,
            &AutoBackend::DEFAULT_CANDIDATES,
            &cells,
            &topk,
            1,
        )
    }

    #[test]
    fn record_round_trip_reproduces_the_decision_table_bit_for_bit() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Pforzheim", ""]);
        let planner = measured_planner(&ds);
        assert!(planner.is_calibrated());
        let record = planner_to_record(&planner);
        let restored = planner_from_record(
            &record,
            planner.snapshot(),
            &AutoBackend::DEFAULT_CANDIDATES,
        )
        .expect("matching snapshot restores");
        assert!(restored.is_calibrated());
        for (a, b) in planner
            .class_multipliers()
            .iter()
            .flatten()
            .chain(planner.topk_multipliers().iter())
            .zip(
                restored
                    .class_multipliers()
                    .iter()
                    .flatten()
                    .chain(restored.topk_multipliers().iter()),
            )
        {
            assert_eq!(a.to_bits(), b.to_bits(), "multiplier survives exactly");
        }
        // Identical multipliers must mean identical routing decisions.
        for (len, k) in [(4usize, 0u32), (6, 1), (9, 3), (30, 8), (200, 16)] {
            assert_eq!(
                planner.decide(len, k).chosen,
                restored.decide(len, k).chosen,
                "len={len} k={k}"
            );
        }
    }

    #[test]
    fn snapshot_mismatch_and_foreign_arms_fall_back_to_none() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
        let planner = measured_planner(&ds);
        let record = planner_to_record(&planner);
        // The dataset changed under the calibration: clean None.
        let other = StatsSnapshot::compute(&Dataset::from_records(["AAAACCCCGGGGTTTT"]));
        assert!(planner_from_record(&record, &other, &AutoBackend::DEFAULT_CANDIDATES).is_none());
        // A renamed arm means a different roster: clean None.
        let mut renamed = record.clone();
        renamed.arms[0] = "scan-vectorized".into();
        assert!(planner_from_record(
            &renamed,
            planner.snapshot(),
            &AutoBackend::DEFAULT_CANDIDATES
        )
        .is_none());
        // A reordered roster must not map multipliers by position.
        let mut reordered = record.clone();
        reordered.arms.swap(0, 1);
        assert!(planner_from_record(
            &reordered,
            planner.snapshot(),
            &AutoBackend::DEFAULT_CANDIDATES
        )
        .is_none());
    }

    #[test]
    fn file_round_trip_restores_a_calibrated_planner() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Augsburg"]);
        let planner = measured_planner(&ds);
        let path = tmp("file");
        save_calibration(&path, &ds, &planner).unwrap();
        let fresh = StatsSnapshot::compute(&ds);
        let restored = load_calibration(&path, &fresh, &AutoBackend::DEFAULT_CANDIDATES)
            .expect("fresh snapshot matches");
        assert!(restored.is_calibrated());
        assert_eq!(
            planner.class_multipliers(),
            restored.class_multipliers(),
            "table survives the disk trip"
        );
        // Same file against a shifted dataset: silent static fallback.
        let shifted = StatsSnapshot::compute(&Dataset::from_records(["Berlin", "Bern"]));
        assert!(load_calibration(&path, &shifted, &AutoBackend::DEFAULT_CANDIDATES).is_none());
        std::fs::remove_file(&path).unwrap();
        // Missing file: silent static fallback, not an error.
        assert!(load_calibration(&path, &fresh, &AutoBackend::DEFAULT_CANDIDATES).is_none());
    }
}
