//! String similarity self-join: all record pairs within edit distance
//! `k`.
//!
//! The venue of the paper was the EDBT/ICDT 2013 *String Similarity
//! Search/Join* competition; this module covers the join half with the
//! same contenders the paper pits against each other:
//!
//! * [`nested_loop_join`] — the quadratic baseline (with the length
//!   filter), the oracle for the others;
//! * [`sorted_join`] — the paper's §6 "sorting" idea applied to joins:
//!   records sorted by length, so each record only meets the window of
//!   records within `±k` length;
//! * [`index_join`] — probe a compressed trie with every record, the
//!   index-based contender;
//! * [`parallel_sorted_join`] — the sorted join under a fixed pool.
//!
//! All functions return pairs `(left, right)` with `left < right`,
//! sorted, so results are directly comparable.

use simsearch_data::{Dataset, RecordId};
use simsearch_distance::{ed_within_banded_with, ed_within_early_abort_with};
use simsearch_parallel::{run_queries, Strategy};

/// One matching pair of a self-join (`left < right`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinPair {
    /// Smaller record id.
    pub left: RecordId,
    /// Larger record id.
    pub right: RecordId,
    /// Edit distance between the two records (≤ the join threshold).
    pub distance: u32,
}

pub(crate) fn normalize(mut pairs: Vec<JoinPair>) -> Vec<JoinPair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Quadratic nested-loop self-join with the length filter — the
/// reference implementation.
pub fn nested_loop_join(dataset: &Dataset, k: u32) -> Vec<JoinPair> {
    let n = dataset.len() as u32;
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for i in 0..n {
        let a = dataset.get(i);
        for j in (i + 1)..n {
            let b = dataset.get(j);
            if a.len().abs_diff(b.len()) > k as usize {
                continue;
            }
            if let Some(d) = ed_within_early_abort_with(&mut rows, a, b, k) {
                out.push(JoinPair {
                    left: i,
                    right: j,
                    distance: d,
                });
            }
        }
    }
    normalize(out)
}

/// Length-sorted self-join: after sorting by length, a record only has to
/// meet the contiguous window of records whose length differs by at most
/// `k` (the paper's §6 "pre-sorting by length" answered for joins).
/// # Examples
///
/// ```
/// use simsearch_core::join::sorted_join;
/// use simsearch_data::Dataset;
///
/// let ds = Dataset::from_records(["Bonn", "Born", "Ulm"]);
/// let pairs = sorted_join(&ds, 1);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].left, pairs[0].right, pairs[0].distance), (0, 1, 1));
/// ```
pub fn sorted_join(dataset: &Dataset, k: u32) -> Vec<JoinPair> {
    let order = length_order(dataset);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let a = dataset.get(i);
        for &j in &order[pos + 1..] {
            let b = dataset.get(j);
            if b.len() - a.len() > k as usize {
                break; // sorted: every later record is longer still
            }
            if let Some(d) = ed_within_banded_with(&mut rows, a, b, k) {
                out.push(JoinPair {
                    left: i.min(j),
                    right: i.max(j),
                    distance: d,
                });
            }
        }
    }
    normalize(out)
}

/// Index-based self-join: build the compressed trie once and probe it
/// with every record; a pair is kept by its smaller side only.
pub fn index_join(dataset: &Dataset, k: u32) -> Vec<JoinPair> {
    let radix = simsearch_index::radix::build(dataset);
    let mut out = Vec::new();
    for (i, record) in dataset.iter() {
        for m in radix.search(record, k).iter() {
            if m.id > i {
                out.push(JoinPair {
                    left: i,
                    right: m.id,
                    distance: m.distance,
                });
            }
        }
    }
    normalize(out)
}

/// [`sorted_join`] with the probe loop distributed over an executor
/// strategy.
pub fn parallel_sorted_join(dataset: &Dataset, k: u32, strategy: Strategy) -> Vec<JoinPair> {
    let order = length_order(dataset);
    let order = &order;
    let chunks: Vec<Vec<JoinPair>> = run_queries(strategy, order.len(), |pos| {
        let i = order[pos];
        let a = dataset.get(i);
        let mut rows = Vec::new();
        let mut local = Vec::new();
        for &j in &order[pos + 1..] {
            let b = dataset.get(j);
            if b.len() - a.len() > k as usize {
                break;
            }
            if let Some(d) = ed_within_banded_with(&mut rows, a, b, k) {
                local.push(JoinPair {
                    left: i.min(j),
                    right: i.max(j),
                    distance: d,
                });
            }
        }
        local
    });
    normalize(chunks.into_iter().flatten().collect())
}

/// One matching pair of an R×S join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrossPair {
    /// Record id in the left dataset.
    pub left: RecordId,
    /// Record id in the right dataset.
    pub right: RecordId,
    /// Edit distance between the two records.
    pub distance: u32,
}

/// R×S similarity join: all pairs `(l ∈ left, r ∈ right)` with
/// `ed(l, r) ≤ k`, via an index on the right side probed by every left
/// record (the standard index-nested-loop join). Pairs are sorted by
/// `(left, right)`.
pub fn cross_index_join(
    left: &Dataset,
    right: &Dataset,
    k: u32,
    strategy: Strategy,
) -> Vec<CrossPair> {
    let radix = simsearch_index::radix::build(right);
    let chunks: Vec<Vec<CrossPair>> = run_queries(strategy, left.len(), |i| {
        let l = i as RecordId;
        radix
            .search(left.get(l), k)
            .iter()
            .map(|m| CrossPair {
                left: l,
                right: m.id,
                distance: m.distance,
            })
            .collect()
    });
    let mut pairs: Vec<CrossPair> = chunks.into_iter().flatten().collect();
    pairs.sort_unstable();
    pairs
}

/// Quadratic R×S reference join.
pub fn cross_nested_loop_join(left: &Dataset, right: &Dataset, k: u32) -> Vec<CrossPair> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (l, a) in left.iter() {
        for (r, b) in right.iter() {
            if a.len().abs_diff(b.len()) > k as usize {
                continue;
            }
            if let Some(d) = ed_within_early_abort_with(&mut rows, a, b, k) {
                out.push(CrossPair {
                    left: l,
                    right: r,
                    distance: d,
                });
            }
        }
    }
    out.sort_unstable();
    out
}

/// Record ids sorted by (length, id).
pub(crate) fn length_order(dataset: &Dataset) -> Vec<RecordId> {
    let mut order: Vec<RecordId> = (0..dataset.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (dataset.record_len(i), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Born", "Ulm", "Ulmen", "Köln", "Bern",
        ])
    }

    #[test]
    fn nested_loop_finds_known_pairs() {
        let ds = sample();
        let pairs = nested_loop_join(&ds, 1);
        // "Bonn"~"Born" (1), "Bern"~"Born" (1), "Bern"~"Bonn"(2? no),
        // "Bern"~"Bern" duplicate records (0), "Ulm"~"Ulmen" (2? no).
        assert!(pairs.contains(&JoinPair {
            left: 2,
            right: 3,
            distance: 1
        }));
        assert!(pairs.contains(&JoinPair {
            left: 1,
            right: 7,
            distance: 0
        }));
        assert!(pairs.iter().all(|p| p.left < p.right && p.distance <= 1));
    }

    #[test]
    fn all_join_algorithms_agree() {
        let ds = sample();
        for k in 0..4 {
            let reference = nested_loop_join(&ds, k);
            assert_eq!(sorted_join(&ds, k), reference, "sorted, k={k}");
            assert_eq!(index_join(&ds, k), reference, "index, k={k}");
            assert_eq!(
                parallel_sorted_join(&ds, k, Strategy::FixedPool { threads: 3 }),
                reference,
                "parallel, k={k}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_datasets() {
        assert!(nested_loop_join(&Dataset::new(), 2).is_empty());
        let one = Dataset::from_records(["solo"]);
        assert!(sorted_join(&one, 2).is_empty());
        assert!(index_join(&one, 2).is_empty());
    }

    #[test]
    fn cross_join_matches_nested_loop() {
        let left = Dataset::from_records(["Bern", "Ulm", "Xxx"]);
        let right = Dataset::from_records(["Berlin", "Bern", "Ulmen", "Born"]);
        for k in 0..4 {
            assert_eq!(
                cross_index_join(&left, &right, k, Strategy::Sequential),
                cross_nested_loop_join(&left, &right, k),
                "k={k}"
            );
        }
        let pairs = cross_index_join(&left, &right, 1, Strategy::FixedPool { threads: 2 });
        assert!(pairs.contains(&CrossPair { left: 0, right: 1, distance: 0 }));
        assert!(pairs.contains(&CrossPair { left: 0, right: 3, distance: 1 }));
    }

    #[test]
    fn cross_join_with_empty_sides() {
        let ds = Dataset::from_records(["x"]);
        let empty = Dataset::new();
        assert!(cross_index_join(&empty, &ds, 2, Strategy::Sequential).is_empty());
        assert!(cross_index_join(&ds, &empty, 2, Strategy::Sequential).is_empty());
    }

    #[test]
    fn zero_threshold_joins_exact_duplicates_only() {
        let ds = Dataset::from_records(["x", "x", "y", "x"]);
        let pairs = sorted_join(&ds, 0);
        assert_eq!(
            pairs,
            vec![
                JoinPair { left: 0, right: 1, distance: 0 },
                JoinPair { left: 0, right: 3, distance: 0 },
                JoinPair { left: 1, right: 3, distance: 0 },
            ]
        );
    }
}
