//! Standard dataset/workload presets used by the examples, the CLI, the
//! integration tests and the benchmark harness.
//!
//! Seeds are fixed so every consumer of a preset sees the identical
//! bytes; sizes default to laptop-scale fractions of the paper's Table I
//! and scale up to paper size with a factor (see `EXPERIMENTS.md`).

use simsearch_data::{
    Alphabet, CityGenerator, Dataset, DnaGenerator, Workload, WorkloadSpec, CITY_THRESHOLDS,
    DNA_THRESHOLDS,
};

/// Seed of the city-names dataset.
pub const CITY_SEED: u64 = 0xC17E;
/// Seed of the DNA dataset.
pub const DNA_SEED: u64 = 0xD7A;
/// Seed of the city query workload.
pub const CITY_QUERY_SEED: u64 = 0xC17E0A;
/// Seed of the DNA query workload.
pub const DNA_QUERY_SEED: u64 = 0xD7A0A;

/// Paper-scale record counts (Table I).
pub const CITY_FULL_RECORDS: usize = 400_000;
/// Paper-scale record counts (Table I).
pub const DNA_FULL_RECORDS: usize = 750_000;

/// A generated dataset with its alphabet and a 1,000-query workload.
pub struct Preset {
    /// Dataset name ("city" or "dna").
    pub name: &'static str,
    /// The records.
    pub dataset: Dataset,
    /// The corpus alphabet.
    pub alphabet: Alphabet,
    /// 1,000 queries with the paper's threshold cycle; take prefixes for
    /// the 100/500 columns.
    pub workload: Workload,
}

/// Builds the city-names preset with `records` names.
pub fn city(records: usize) -> Preset {
    let dataset = CityGenerator::new(CITY_SEED).generate(records);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload =
        WorkloadSpec::new(&CITY_THRESHOLDS, 1_000, CITY_QUERY_SEED).generate(&dataset, &alphabet);
    Preset {
        name: "city",
        dataset,
        alphabet,
        workload,
    }
}

/// Builds the DNA preset with `records` reads.
pub fn dna(records: usize) -> Preset {
    // Genome sized for ~70× coverage at paper scale, clamped so small
    // test datasets still overlap heavily.
    let genome = (records * 100 / 70).clamp(10_000, 100_000_000);
    let dataset = DnaGenerator::new(DNA_SEED)
        .genome_len(genome)
        .generate(records);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload =
        WorkloadSpec::new(&DNA_THRESHOLDS, 1_000, DNA_QUERY_SEED).generate(&dataset, &alphabet);
    Preset {
        name: "dna",
        dataset,
        alphabet,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_preset_matches_table_one_profile() {
        let p = city(3_000);
        assert_eq!(p.dataset.len(), 3_000);
        assert!(p.dataset.max_len().unwrap() <= 64);
        assert_eq!(p.workload.len(), 1_000);
        assert_eq!(p.workload.max_threshold(), 3);
    }

    #[test]
    fn dna_preset_matches_table_one_profile() {
        let p = dna(1_000);
        assert_eq!(p.dataset.len(), 1_000);
        let dna_alpha = Alphabet::dna();
        for &s in p.alphabet.symbols() {
            assert!(dna_alpha.contains(s));
        }
        assert_eq!(p.workload.max_threshold(), 16);
    }

    #[test]
    fn presets_are_reproducible() {
        let a = city(500);
        let b = city(500);
        assert!(a.dataset.iter().zip(b.dataset.iter()).all(|(x, y)| x == y));
        assert_eq!(a.workload, b.workload);
    }
}
