//! The unified search engine: every solution of the paper (and every
//! extension) behind one build/search interface.

use simsearch_data::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};
use simsearch_data::{Dataset, MatchSet, Workload};
use simsearch_distance::KernelKind;
use simsearch_index::{BkTree, LengthBuckets, QgramIndex, RadixTrie, SuffixIndex, Trie};
use simsearch_parallel::{run_queries, Strategy};
use simsearch_scan::{SeqVariant, SequentialScan};

/// The rungs of the paper's *index* ladder (§4, Tables V/IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdxVariant {
    /// Rung 1 (§4.1): uncompressed prefix tree with min/max-length
    /// pruning, single-threaded.
    I1BaseTrie,
    /// Rung 2 (§4.2): compressed (radix) tree, single-threaded.
    I2Compressed,
    /// Rung 3 (§4.3): compressed tree under a fixed thread pool.
    I3Pool {
        /// Number of pool threads.
        threads: usize,
    },
}

impl IdxVariant {
    /// The ladder exactly as evaluated in Tables V/IX.
    pub fn ladder(pool_threads: usize) -> [IdxVariant; 3] {
        [
            IdxVariant::I1BaseTrie,
            IdxVariant::I2Compressed,
            IdxVariant::I3Pool {
                threads: pool_threads,
            },
        ]
    }

    /// The paper's row label for this rung.
    pub fn label(self) -> String {
        match self {
            IdxVariant::I1BaseTrie => "1) Base implementation".into(),
            IdxVariant::I2Compressed => "2) Compression".into(),
            IdxVariant::I3Pool { threads } => {
                format!("3) Management of parallelism ({threads} threads)")
            }
        }
    }
}

/// Which solution an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// A rung of the sequential-scan ladder (§3).
    Scan(SeqVariant),
    /// A flat scan with an explicit kernel/executor pair (ablations).
    ScanCustom {
        /// Bounded-distance kernel.
        kernel: KernelKind,
        /// Workload executor.
        strategy: Strategy,
    },
    /// A rung of the index ladder (§4), with the paper's own pruning
    /// (full-width rows + prefix condition (9)/(10)).
    Index(IdxVariant),
    /// A rung of the index ladder with *modern* pruning (banded rows,
    /// row-minimum lemma, mid-edge abandonment) — an extension whose
    /// effect the `ablation_pruning` benchmark measures.
    IndexModern(IdxVariant),
    /// Radix tree with frequency-vector annotations (§6 future work).
    /// Tracks DNA symbols when the dataset is DNA, vowels otherwise.
    RadixFreq {
        /// Workload executor.
        strategy: Strategy,
    },
    /// Inverted q-gram index baseline.
    Qgram {
        /// Gram size.
        q: usize,
        /// Workload executor.
        strategy: Strategy,
    },
    /// Length-bucketed scan (§6 "sorting" future work).
    Buckets {
        /// Workload executor.
        strategy: Strategy,
    },
    /// Suffix array with query partitioning (related work §2.3,
    /// Navarro et al.).
    Suffix {
        /// Workload executor.
        strategy: Strategy,
    },
    /// BK-tree metric index (Burkhard–Keller baseline).
    Bk {
        /// Workload executor.
        strategy: Strategy,
    },
}

impl EngineKind {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            EngineKind::Scan(v) => format!("scan[{}]", v.label()),
            EngineKind::ScanCustom { kernel, strategy } => {
                format!("scan[{}/{}]", kernel.name(), strategy.name())
            }
            EngineKind::Index(v) => format!("index[{}]", v.label()),
            EngineKind::IndexModern(v) => format!("index-modern[{}]", v.label()),
            EngineKind::RadixFreq { strategy } => format!("index[freq/{}]", strategy.name()),
            EngineKind::Qgram { q, strategy } => format!("qgram[q={q}/{}]", strategy.name()),
            EngineKind::Buckets { strategy } => format!("buckets[{}]", strategy.name()),
            EngineKind::Suffix { strategy } => format!("suffix-array[{}]", strategy.name()),
            EngineKind::Bk { strategy } => format!("bk-tree[{}]", strategy.name()),
        }
    }
}

/// Which trie descent an index backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PruneMode {
    /// The paper's §4.1 pruning.
    Paper,
    /// Banded rows + row-minimum lemma (extension).
    Modern,
}

enum Backend<'a> {
    Scan(SequentialScan<'a>, SeqVariant),
    ScanCustom(SequentialScan<'a>, KernelKind, Strategy),
    Trie(Trie, PruneMode),
    Radix(RadixTrie, Strategy, PruneMode),
    Qgram(QgramIndex, Strategy),
    Buckets(LengthBuckets, Strategy),
    Suffix(SuffixIndex, Strategy),
    Bk(BkTree, Strategy),
}

/// A built search engine over one dataset.
pub struct SearchEngine<'a> {
    dataset: &'a Dataset,
    kind: EngineKind,
    backend: Backend<'a>,
}

impl<'a> SearchEngine<'a> {
    /// Builds the engine (index construction happens here; the paper
    /// excludes build time from its query-time measurements, and so do
    /// the benchmarks).
    pub fn build(dataset: &'a Dataset, kind: EngineKind) -> Self {
        let backend = match kind {
            EngineKind::Scan(v) => {
                let scan = SequentialScan::new(dataset);
                // Build-time preprocessing (owned copies for V1–V3, the
                // sorted view for V7) happens here, not in the first
                // timed query.
                scan.prepare(v);
                Backend::Scan(scan, v)
            }
            EngineKind::ScanCustom { kernel, strategy } => {
                Backend::ScanCustom(SequentialScan::new(dataset), kernel, strategy)
            }
            EngineKind::Index(v) | EngineKind::IndexModern(v) => {
                let mode = if matches!(kind, EngineKind::Index(_)) {
                    PruneMode::Paper
                } else {
                    PruneMode::Modern
                };
                match v {
                    IdxVariant::I1BaseTrie => {
                        Backend::Trie(simsearch_index::trie::build(dataset), mode)
                    }
                    IdxVariant::I2Compressed => Backend::Radix(
                        simsearch_index::radix::build(dataset),
                        Strategy::Sequential,
                        mode,
                    ),
                    IdxVariant::I3Pool { threads } => Backend::Radix(
                        simsearch_index::radix::build(dataset),
                        Strategy::FixedPool { threads },
                        mode,
                    ),
                }
            }
            EngineKind::RadixFreq { strategy } => {
                // Track the alphabet that fits the data: DNA symbols when
                // the corpus is DNA, vowels (the paper's city-name choice)
                // otherwise.
                let dna = simsearch_data::Alphabet::dna();
                let tracked = if dataset.records().all(|r| dna.covers(r)) {
                    DNA_SYMBOLS
                } else {
                    VOWEL_SYMBOLS
                };
                Backend::Radix(
                    simsearch_index::radix::build_with_freq(dataset, tracked),
                    strategy,
                    PruneMode::Modern,
                )
            }
            EngineKind::Qgram { q, strategy } => {
                Backend::Qgram(QgramIndex::build(dataset, q), strategy)
            }
            EngineKind::Buckets { strategy } => {
                Backend::Buckets(LengthBuckets::build(dataset), strategy)
            }
            EngineKind::Suffix { strategy } => {
                Backend::Suffix(SuffixIndex::build(dataset), strategy)
            }
            EngineKind::Bk { strategy } => Backend::Bk(BkTree::build(dataset), strategy),
        };
        Self {
            dataset,
            kind,
            backend,
        }
    }

    /// Wraps a pre-built [`SequentialScan`] as a scan engine without
    /// rebuilding its auxiliary structures — the serving layer's entry
    /// point: the daemon calls [`SequentialScan::prepare`] once at
    /// startup and every subsequent request reuses the prepared state
    /// (owned copies, sorted view) across its whole lifetime.
    ///
    /// `prepare(variant)` is still invoked here (it is idempotent), so a
    /// caller that forgot to prepare pays the cost now rather than in
    /// the first query.
    pub fn from_scan(scan: SequentialScan<'a>, variant: SeqVariant) -> Self {
        scan.prepare(variant);
        Self {
            dataset: scan.dataset(),
            kind: EngineKind::Scan(variant),
            backend: Backend::Scan(scan, variant),
        }
    }

    /// The engine's kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        self.kind.name()
    }

    /// The dataset this engine searches.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// Answers one query.
    pub fn search(&self, query: &[u8], k: u32) -> MatchSet {
        match &self.backend {
            Backend::Scan(scan, v) => scan.search_one(*v, query, k),
            Backend::ScanCustom(scan, kernel, _) => {
                // Reuse the workload path for a single query.
                let w = Workload {
                    queries: vec![simsearch_data::QueryRecord::new(query.to_vec(), k)],
                };
                scan.run_with(*kernel, Strategy::Sequential, &w)
                    .pop()
                    .expect("one query in, one result out")
            }
            Backend::Trie(trie, mode) => match mode {
                PruneMode::Paper => trie.search_paper(query, k),
                PruneMode::Modern => trie.search(query, k),
            },
            Backend::Radix(radix, _, mode) => match mode {
                PruneMode::Paper => radix.search_paper(query, k),
                PruneMode::Modern => radix.search(query, k),
            },
            Backend::Qgram(idx, _) => idx.search(self.dataset, query, k),
            Backend::Buckets(buckets, _) => buckets.search(self.dataset, query, k),
            Backend::Suffix(idx, _) => idx.search(self.dataset, query, k),
            Backend::Bk(tree, _) => tree.search(self.dataset, query, k),
        }
    }

    /// Executes a whole workload (this is the quantity the paper times).
    pub fn run(&self, workload: &Workload) -> Vec<MatchSet> {
        match &self.backend {
            Backend::Scan(scan, v) => scan.run(*v, workload),
            Backend::ScanCustom(scan, kernel, strategy) => {
                scan.run_with(*kernel, *strategy, workload)
            }
            Backend::Trie(trie, mode) => workload
                .iter()
                .map(|q| match mode {
                    PruneMode::Paper => trie.search_paper(&q.text, q.threshold),
                    PruneMode::Modern => trie.search(&q.text, q.threshold),
                })
                .collect(),
            Backend::Radix(radix, strategy, mode) => {
                run_queries(*strategy, workload.len(), |i| {
                    let q = &workload.queries[i];
                    match mode {
                        PruneMode::Paper => radix.search_paper(&q.text, q.threshold),
                        PruneMode::Modern => radix.search(&q.text, q.threshold),
                    }
                })
            }
            Backend::Qgram(idx, strategy) => run_queries(*strategy, workload.len(), |i| {
                let q = &workload.queries[i];
                idx.search(self.dataset, &q.text, q.threshold)
            }),
            Backend::Buckets(buckets, strategy) => {
                run_queries(*strategy, workload.len(), |i| {
                    let q = &workload.queries[i];
                    buckets.search(self.dataset, &q.text, q.threshold)
                })
            }
            Backend::Suffix(idx, strategy) => run_queries(*strategy, workload.len(), |i| {
                let q = &workload.queries[i];
                idx.search(self.dataset, &q.text, q.threshold)
            }),
            Backend::Bk(tree, strategy) => run_queries(*strategy, workload.len(), |i| {
                let q = &workload.queries[i];
                tree.search(self.dataset, &q.text, q.threshold)
            }),
        }
    }

    /// Executes a workload under an explicit executor, overriding
    /// whatever scheduling the engine kind implies. The serving layer's
    /// micro-batches go through here: the batch scheduler picks the
    /// strategy per batch (sequential for tiny batches, pooled for
    /// large ones) regardless of which rung answers the queries.
    ///
    /// Scan backends route single queries through the rung's kernel, so
    /// results are identical to [`SearchEngine::run`] for every kind.
    pub fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        match &self.backend {
            Backend::ScanCustom(scan, kernel, _) => scan.run_with(*kernel, strategy, workload),
            _ => run_queries(strategy, workload.len(), |i| {
                let q = &workload.queries[i];
                self.search(&q.text, q.threshold)
            }),
        }
    }

    /// Index-structure statistics, when the backend has a structure
    /// (`(node or posting count, approximate bytes)`).
    pub fn index_stats(&self) -> Option<(usize, usize)> {
        match &self.backend {
            Backend::Trie(t, _) => Some((t.node_count(), t.memory_bytes())),
            Backend::Radix(r, _, _) => Some((r.node_count(), r.memory_bytes())),
            Backend::Qgram(q, _) => Some((q.distinct_grams(), q.memory_bytes())),
            Backend::Buckets(b, _) => Some((b.bucket_count(), 0)),
            Backend::Suffix(sfx, _) => Some((sfx.record_count(), sfx.memory_bytes())),
            Backend::Bk(tree, _) => Some((tree.node_count(), 0)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::QueryRecord;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
        ])
    }

    fn all_kinds() -> Vec<EngineKind> {
        vec![
            EngineKind::Scan(SeqVariant::V1Base),
            EngineKind::Scan(SeqVariant::V4Flat),
            EngineKind::Scan(SeqVariant::V6Pool { threads: 2 }),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            EngineKind::ScanCustom {
                kernel: KernelKind::Banded,
                strategy: Strategy::WorkQueue { threads: 2 },
            },
            EngineKind::Index(IdxVariant::I1BaseTrie),
            EngineKind::Index(IdxVariant::I2Compressed),
            EngineKind::Index(IdxVariant::I3Pool { threads: 2 }),
            EngineKind::IndexModern(IdxVariant::I1BaseTrie),
            EngineKind::IndexModern(IdxVariant::I2Compressed),
            EngineKind::IndexModern(IdxVariant::I3Pool { threads: 2 }),
            EngineKind::RadixFreq {
                strategy: Strategy::Sequential,
            },
            EngineKind::Qgram {
                q: 2,
                strategy: Strategy::Sequential,
            },
            EngineKind::Buckets {
                strategy: Strategy::Sequential,
            },
            EngineKind::Suffix {
                strategy: Strategy::Sequential,
            },
            EngineKind::Bk {
                strategy: Strategy::Sequential,
            },
        ]
    }

    #[test]
    fn every_engine_agrees_on_single_queries() {
        let ds = dataset();
        let engines: Vec<SearchEngine> = all_kinds()
            .into_iter()
            .map(|k| SearchEngine::build(&ds, k))
            .collect();
        for q in ["Berlin", "Urm", "", "Xyz"] {
            for k in 0..4 {
                let expected = engines[0].search(q.as_bytes(), k);
                for e in &engines[1..] {
                    assert_eq!(
                        e.search(q.as_bytes(), k),
                        expected,
                        "engine {} q={q} k={k}",
                        e.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_engine_agrees_on_workloads() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
            ],
        };
        let engines: Vec<SearchEngine> = all_kinds()
            .into_iter()
            .map(|k| SearchEngine::build(&ds, k))
            .collect();
        let expected = engines[0].run(&workload);
        for e in &engines[1..] {
            assert_eq!(e.run(&workload), expected, "engine {}", e.name());
        }
    }

    #[test]
    fn from_scan_reuses_prepared_state_and_agrees() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
            ],
        };
        let reference = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let expected = reference.run(&workload);
        for v in [
            SeqVariant::V4Flat,
            SeqVariant::V7SortedPrefix,
            SeqVariant::V1Base,
        ] {
            let scan = simsearch_scan::SequentialScan::new(&ds);
            scan.prepare(v);
            let engine = SearchEngine::from_scan(scan, v);
            assert_eq!(engine.kind(), EngineKind::Scan(v));
            assert_eq!(engine.run(&workload), expected, "variant {v:?}");
            assert_eq!(engine.dataset().len(), ds.len());
        }
    }

    #[test]
    fn run_with_strategy_matches_run_for_every_engine() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Bonn", 1),
                QueryRecord::new("zzz", 3),
                QueryRecord::new("", 1),
            ],
        };
        for kind in all_kinds() {
            let engine = SearchEngine::build(&ds, kind);
            let expected = engine.run(&workload);
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 2 },
                Strategy::WorkQueue { threads: 3 },
            ] {
                assert_eq!(
                    engine.run_with_strategy(&workload, strategy),
                    expected,
                    "engine {} strategy {}",
                    engine.name(),
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn index_stats_present_only_for_structures() {
        let ds = dataset();
        let scan = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(scan.index_stats().is_none());
        let trie = SearchEngine::build(&ds, EngineKind::Index(IdxVariant::I1BaseTrie));
        let (nodes, bytes) = trie.index_stats().unwrap();
        assert!(nodes > 1);
        assert!(bytes > 0);
    }

    #[test]
    fn names_are_informative() {
        assert!(EngineKind::Index(IdxVariant::I2Compressed)
            .name()
            .contains("Compression"));
        assert!(EngineKind::Qgram {
            q: 3,
            strategy: Strategy::Sequential
        }
        .name()
        .contains("q=3"));
    }
}
