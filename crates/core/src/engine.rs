//! The unified search engine: every solution of the paper (and every
//! extension) behind one build/search interface.
//!
//! Since the planner refactor the engine is a thin veneer over the
//! [`Backend`](crate::backend::Backend) trait: `build` maps an
//! [`EngineKind`] to one trait object, and every engine method
//! delegates. Scan and index code paths are no longer parallel
//! universes — the serving layer, the CLI, and the benches all run the
//! same `Backend` methods the engine does.

use crate::backend::{
    AutoBackend, Backend, BackendDiag, BkBackend, BucketsBackend, KernelScanBackend,
    QgramBackend, RadixBackend, ScanBackend, SuffixBackend, TrieBackend,
};
use crate::sharded::{ShardBy, ShardedBackend};
use simsearch_data::{Dataset, MatchSet, Workload};
use simsearch_distance::KernelKind;
use simsearch_parallel::Strategy;
use simsearch_scan::{SeqVariant, SequentialScan};

/// The rungs of the paper's *index* ladder (§4, Tables V/IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdxVariant {
    /// Rung 1 (§4.1): uncompressed prefix tree with min/max-length
    /// pruning, single-threaded.
    I1BaseTrie,
    /// Rung 2 (§4.2): compressed (radix) tree, single-threaded.
    I2Compressed,
    /// Rung 3 (§4.3): compressed tree under a fixed thread pool.
    I3Pool {
        /// Number of pool threads.
        threads: usize,
    },
}

impl IdxVariant {
    /// The ladder exactly as evaluated in Tables V/IX.
    pub fn ladder(pool_threads: usize) -> [IdxVariant; 3] {
        [
            IdxVariant::I1BaseTrie,
            IdxVariant::I2Compressed,
            IdxVariant::I3Pool {
                threads: pool_threads,
            },
        ]
    }

    /// The paper's row label for this rung.
    pub fn label(self) -> String {
        match self {
            IdxVariant::I1BaseTrie => "1) Base implementation".into(),
            IdxVariant::I2Compressed => "2) Compression".into(),
            IdxVariant::I3Pool { threads } => {
                format!("3) Management of parallelism ({threads} threads)")
            }
        }
    }
}

/// Which solution an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// A rung of the sequential-scan ladder (§3).
    Scan(SeqVariant),
    /// A flat scan with an explicit kernel/executor pair (ablations).
    ScanCustom {
        /// Bounded-distance kernel.
        kernel: KernelKind,
        /// Workload executor.
        strategy: Strategy,
    },
    /// A rung of the index ladder (§4), with the paper's own pruning
    /// (full-width rows + prefix condition (9)/(10)).
    Index(IdxVariant),
    /// A rung of the index ladder with *modern* pruning (banded rows,
    /// row-minimum lemma, mid-edge abandonment) — an extension whose
    /// effect the `ablation_pruning` benchmark measures.
    IndexModern(IdxVariant),
    /// Radix tree with frequency-vector annotations (§6 future work).
    /// Tracks DNA symbols when the dataset is DNA, vowels otherwise.
    RadixFreq {
        /// Workload executor.
        strategy: Strategy,
    },
    /// Inverted q-gram index baseline.
    Qgram {
        /// Gram size.
        q: usize,
        /// Workload executor.
        strategy: Strategy,
    },
    /// Length-bucketed scan (§6 "sorting" future work).
    Buckets {
        /// Workload executor.
        strategy: Strategy,
    },
    /// Suffix array with query partitioning (related work §2.3,
    /// Navarro et al.).
    Suffix {
        /// Workload executor.
        strategy: Strategy,
    },
    /// BK-tree metric index (Burkhard–Keller baseline).
    Bk {
        /// Workload executor.
        strategy: Strategy,
    },
    /// Planner-driven backend selection: a
    /// [`Planner`](crate::planner::Planner) built from the dataset's
    /// statistics routes each query to the cheapest candidate backend.
    /// This variant plans statically (deterministically); use
    /// [`SearchEngine::build_auto`] to add a calibration probe.
    Auto {
        /// Worker threads for workload execution (1 = sequential).
        threads: usize,
    },
    /// Partitioned execution: the dataset is split into shards, each
    /// with its own planner-driven backend over its own statistics;
    /// queries fan out and per-shard results are k-way merged. This
    /// variant plans each shard statically (deterministically); the
    /// serving layer uses [`ShardedBackend::calibrated`] for measured
    /// per-shard routing.
    Sharded {
        /// Number of shards (clamped to ≥ 1).
        shards: usize,
        /// How records are assigned to shards.
        by: ShardBy,
        /// Worker threads for fan-out and workload execution.
        threads: usize,
    },
    /// Live ingest: an LSM-shaped [`LiveEngine`](crate::lsm::LiveEngine)
    /// (append-only memtable + tombstones in front of immutable V7
    /// segments) seeded from the dataset. Mutable — the serving
    /// layer's `--live` mode.
    Live {
        /// Memtable flush threshold (records).
        memtable_cap: usize,
    },
    /// Sharded live ingest: [`ShardedBackend::live`] — every shard a
    /// [`LiveEngine`](crate::lsm::LiveEngine), inserts routed by
    /// content hash from one global id space, deletes routed to the
    /// owning shard. The serving layer's `--live --shards N` mode.
    /// Validate with [`EngineKind::validate`] before building: the
    /// `len` partitioner with ≥ 2 shards and a zero memtable cap are
    /// both rejected.
    ShardedLive {
        /// Number of shards (clamped to ≥ 1).
        shards: usize,
        /// How records are assigned to shards (`hash` required at ≥ 2
        /// shards).
        by: ShardBy,
        /// Worker threads for fan-out and workload execution.
        threads: usize,
        /// Per-shard memtable flush threshold (records).
        memtable_cap: usize,
    },
}

impl EngineKind {
    /// Checks constraints that [`build_backend`] would otherwise panic
    /// on — currently only [`EngineKind::ShardedLive`] has any (the
    /// `len` partitioner with ≥ 2 shards, a zero memtable cap, > 256
    /// shards). Callers that build from untrusted input (the CLI, the
    /// serving layer's `spawn`) surface the message as a usage error.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            EngineKind::ShardedLive {
                shards,
                by,
                threads,
                memtable_cap,
            } => {
                // Probe-build on an empty dataset: `ShardedBackend::live`
                // owns the real rules; this just runs them early.
                crate::sharded::ShardedBackend::live(
                    &Dataset::new(),
                    shards,
                    by,
                    threads,
                    crate::lsm::LsmConfig { memtable_cap },
                )
                .map(|_| ())
            }
            _ => Ok(()),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            EngineKind::Scan(v) => format!("scan[{}]", v.label()),
            EngineKind::ScanCustom { kernel, strategy } => {
                format!("scan[{}/{}]", kernel.name(), strategy.name())
            }
            EngineKind::Index(v) => format!("index[{}]", v.label()),
            EngineKind::IndexModern(v) => format!("index-modern[{}]", v.label()),
            EngineKind::RadixFreq { strategy } => format!("index[freq/{}]", strategy.name()),
            EngineKind::Qgram { q, strategy } => format!("qgram[q={q}/{}]", strategy.name()),
            EngineKind::Buckets { strategy } => format!("buckets[{}]", strategy.name()),
            EngineKind::Suffix { strategy } => format!("suffix-array[{}]", strategy.name()),
            EngineKind::Bk { strategy } => format!("bk-tree[{}]", strategy.name()),
            EngineKind::Auto { threads } => format!("auto[threads={threads}]"),
            EngineKind::Sharded {
                shards,
                by,
                threads,
            } => format!("sharded[s={shards}/{}/threads={threads}]", by.name()),
            EngineKind::Live { memtable_cap } => format!("live[lsm/cap={memtable_cap}]"),
            EngineKind::ShardedLive {
                shards,
                by,
                threads,
                memtable_cap,
            } => format!(
                "sharded-live[s={shards}/{}/cap={memtable_cap}/threads={threads}]",
                by.name()
            ),
        }
    }
}

/// Maps an [`EngineKind`] to its trait-object backend (the single
/// factory every consumer goes through).
pub fn build_backend<'a>(dataset: &'a Dataset, kind: EngineKind) -> Box<dyn Backend + 'a> {
    match kind {
        EngineKind::Scan(v) => Box::new(ScanBackend::new(SequentialScan::new(dataset), v)),
        EngineKind::ScanCustom { kernel, strategy } => Box::new(KernelScanBackend::new(
            SequentialScan::new(dataset),
            kernel,
            strategy,
        )),
        EngineKind::Index(v) | EngineKind::IndexModern(v) => {
            let paper = matches!(kind, EngineKind::Index(_));
            match v {
                IdxVariant::I1BaseTrie => Box::new(TrieBackend::build(dataset, paper)),
                IdxVariant::I2Compressed => {
                    Box::new(RadixBackend::build(dataset, paper, Strategy::Sequential))
                }
                IdxVariant::I3Pool { threads } => Box::new(RadixBackend::build(
                    dataset,
                    paper,
                    Strategy::FixedPool { threads },
                )),
            }
        }
        EngineKind::RadixFreq { strategy } => {
            Box::new(RadixBackend::build_with_freq(dataset, strategy))
        }
        EngineKind::Qgram { q, strategy } => Box::new(QgramBackend::build(dataset, q, strategy)),
        EngineKind::Buckets { strategy } => Box::new(BucketsBackend::build(dataset, strategy)),
        EngineKind::Suffix { strategy } => Box::new(SuffixBackend::build(dataset, strategy)),
        EngineKind::Bk { strategy } => Box::new(BkBackend::build(dataset, strategy)),
        EngineKind::Auto { threads } => Box::new(AutoBackend::new(dataset, threads)),
        EngineKind::Sharded {
            shards,
            by,
            threads,
        } => Box::new(ShardedBackend::build(dataset, shards, by, threads)),
        EngineKind::Live { memtable_cap } => Box::new(crate::lsm::LiveEngine::from_dataset(
            dataset,
            crate::lsm::LsmConfig { memtable_cap },
        )),
        EngineKind::ShardedLive {
            shards,
            by,
            threads,
            memtable_cap,
        } => Box::new(
            // Panics on an invalid combination; run `EngineKind::validate`
            // first when the kind comes from untrusted input.
            ShardedBackend::live(
                dataset,
                shards,
                by,
                threads,
                crate::lsm::LsmConfig { memtable_cap },
            )
            .expect("invalid ShardedLive configuration (EngineKind::validate catches this)"),
        ),
    }
}

/// A built search engine over one dataset.
pub struct SearchEngine<'a> {
    dataset: &'a Dataset,
    kind: EngineKind,
    backend: Box<dyn Backend + 'a>,
}

impl<'a> SearchEngine<'a> {
    /// Builds the engine (index construction happens here; the paper
    /// excludes build time from its query-time measurements, and so do
    /// the benchmarks — [`Backend::prepare`] runs now, so no auxiliary
    /// structure is built inside the first timed query).
    pub fn build(dataset: &'a Dataset, kind: EngineKind) -> Self {
        let backend = build_backend(dataset, kind);
        backend.prepare();
        Self {
            dataset,
            kind,
            backend,
        }
    }

    /// Builds a planner-driven engine, optionally calibrating the
    /// planner with a micro-probe workload (run through every
    /// candidate backend at build time — like index construction, the
    /// cost is excluded from query timing). Without a probe this is
    /// `build(dataset, EngineKind::Auto { threads })`.
    pub fn build_auto(
        dataset: &'a Dataset,
        threads: usize,
        probe: Option<&Workload>,
    ) -> Self {
        let backend: Box<dyn Backend + 'a> = match probe {
            Some(p) => Box::new(AutoBackend::calibrated(dataset, threads, p)),
            None => Box::new(AutoBackend::new(dataset, threads)),
        };
        backend.prepare();
        Self {
            dataset,
            kind: EngineKind::Auto { threads },
            backend,
        }
    }

    /// Wraps a pre-built [`SequentialScan`] as a scan engine without
    /// rebuilding its auxiliary structures — the serving layer's entry
    /// point: the daemon calls [`SequentialScan::prepare`] once at
    /// startup and every subsequent request reuses the prepared state
    /// (owned copies, sorted view) across its whole lifetime.
    ///
    /// `prepare(variant)` is still invoked here (it is idempotent), so a
    /// caller that forgot to prepare pays the cost now rather than in
    /// the first query.
    pub fn from_scan(scan: SequentialScan<'a>, variant: SeqVariant) -> Self {
        scan.prepare(variant);
        let dataset = scan.dataset();
        Self {
            dataset,
            kind: EngineKind::Scan(variant),
            backend: Box::new(ScanBackend::new(scan, variant)),
        }
    }

    /// The engine's kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        self.kind.name()
    }

    /// The dataset this engine searches.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The backend behind the engine (the serving layer and `explain`
    /// reach trait-level methods — cell counting, top-k, diagnostics —
    /// through this).
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// Answers one query.
    pub fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.backend.search(query, k)
    }

    /// Executes a whole workload (this is the quantity the paper times).
    pub fn run(&self, workload: &Workload) -> Vec<MatchSet> {
        self.backend.run_workload(workload)
    }

    /// Executes a workload under an explicit executor, overriding
    /// whatever scheduling the engine kind implies. The serving layer's
    /// micro-batches go through here: the batch scheduler picks the
    /// strategy per batch (sequential for tiny batches, pooled for
    /// large ones) regardless of which rung answers the queries.
    ///
    /// Results are identical to [`SearchEngine::run`] for every kind.
    pub fn run_with_strategy(&self, workload: &Workload, strategy: Strategy) -> Vec<MatchSet> {
        self.backend.run_with_strategy(workload, strategy)
    }

    /// The backend's self-description (name, structure statistics,
    /// filter names, and — for auto engines — the recorded plan).
    pub fn diag(&self) -> BackendDiag {
        self.backend.diag()
    }

    /// Index-structure statistics, when the backend has a structure
    /// (`(node or posting count, approximate bytes)`).
    pub fn index_stats(&self) -> Option<(usize, usize)> {
        self.backend.diag().structure
    }

    /// `(backend name, queries routed)` counters, when the engine is
    /// planner-driven.
    pub fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        self.backend.plan_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::QueryRecord;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
        ])
    }

    fn all_kinds() -> Vec<EngineKind> {
        vec![
            EngineKind::Scan(SeqVariant::V1Base),
            EngineKind::Scan(SeqVariant::V4Flat),
            EngineKind::Scan(SeqVariant::V6Pool { threads: 2 }),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            EngineKind::Scan(SeqVariant::V8BitParallel),
            EngineKind::ScanCustom {
                kernel: KernelKind::Banded,
                strategy: Strategy::WorkQueue { threads: 2 },
            },
            EngineKind::Index(IdxVariant::I1BaseTrie),
            EngineKind::Index(IdxVariant::I2Compressed),
            EngineKind::Index(IdxVariant::I3Pool { threads: 2 }),
            EngineKind::IndexModern(IdxVariant::I1BaseTrie),
            EngineKind::IndexModern(IdxVariant::I2Compressed),
            EngineKind::IndexModern(IdxVariant::I3Pool { threads: 2 }),
            EngineKind::RadixFreq {
                strategy: Strategy::Sequential,
            },
            EngineKind::Qgram {
                q: 2,
                strategy: Strategy::Sequential,
            },
            EngineKind::Buckets {
                strategy: Strategy::Sequential,
            },
            EngineKind::Suffix {
                strategy: Strategy::Sequential,
            },
            EngineKind::Bk {
                strategy: Strategy::Sequential,
            },
            EngineKind::Auto { threads: 1 },
            EngineKind::Auto { threads: 2 },
            EngineKind::Sharded {
                shards: 1,
                by: crate::sharded::ShardBy::Len,
                threads: 1,
            },
            EngineKind::Sharded {
                shards: 3,
                by: crate::sharded::ShardBy::Len,
                threads: 2,
            },
            EngineKind::Sharded {
                shards: 3,
                by: crate::sharded::ShardBy::Hash,
                threads: 1,
            },
            EngineKind::Sharded {
                shards: 16,
                by: crate::sharded::ShardBy::Hash,
                threads: 2,
            },
            EngineKind::Live { memtable_cap: 4 },
            EngineKind::ShardedLive {
                shards: 1,
                by: crate::sharded::ShardBy::Len,
                threads: 1,
                memtable_cap: 4,
            },
            EngineKind::ShardedLive {
                shards: 4,
                by: crate::sharded::ShardBy::Hash,
                threads: 2,
                memtable_cap: 4,
            },
        ]
    }

    #[test]
    fn every_engine_agrees_on_single_queries() {
        let ds = dataset();
        let engines: Vec<SearchEngine> = all_kinds()
            .into_iter()
            .map(|k| SearchEngine::build(&ds, k))
            .collect();
        for q in ["Berlin", "Urm", "", "Xyz"] {
            for k in 0..4 {
                let expected = engines[0].search(q.as_bytes(), k);
                for e in &engines[1..] {
                    assert_eq!(
                        e.search(q.as_bytes(), k),
                        expected,
                        "engine {} q={q} k={k}",
                        e.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_engine_agrees_on_workloads() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
            ],
        };
        let engines: Vec<SearchEngine> = all_kinds()
            .into_iter()
            .map(|k| SearchEngine::build(&ds, k))
            .collect();
        let expected = engines[0].run(&workload);
        for e in &engines[1..] {
            assert_eq!(e.run(&workload), expected, "engine {}", e.name());
        }
    }

    #[test]
    fn from_scan_reuses_prepared_state_and_agrees() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
            ],
        };
        let reference = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let expected = reference.run(&workload);
        for v in [
            SeqVariant::V4Flat,
            SeqVariant::V7SortedPrefix,
            SeqVariant::V1Base,
        ] {
            let scan = simsearch_scan::SequentialScan::new(&ds);
            scan.prepare(v);
            let engine = SearchEngine::from_scan(scan, v);
            assert_eq!(engine.kind(), EngineKind::Scan(v));
            assert_eq!(engine.run(&workload), expected, "variant {v:?}");
            assert_eq!(engine.dataset().len(), ds.len());
        }
    }

    #[test]
    fn run_with_strategy_matches_run_for_every_engine() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Bonn", 1),
                QueryRecord::new("zzz", 3),
                QueryRecord::new("", 1),
            ],
        };
        for kind in all_kinds() {
            let engine = SearchEngine::build(&ds, kind);
            let expected = engine.run(&workload);
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 2 },
                Strategy::WorkQueue { threads: 3 },
            ] {
                assert_eq!(
                    engine.run_with_strategy(&workload, strategy),
                    expected,
                    "engine {} strategy {}",
                    engine.name(),
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn index_stats_present_only_for_structures() {
        let ds = dataset();
        let scan = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(scan.index_stats().is_none());
        let trie = SearchEngine::build(&ds, EngineKind::Index(IdxVariant::I1BaseTrie));
        let (nodes, bytes) = trie.index_stats().unwrap();
        assert!(nodes > 1);
        assert!(bytes > 0);
    }

    #[test]
    fn build_auto_agrees_with_the_oracle_with_and_without_probe() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 0),
            ],
        };
        let reference = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let expected = reference.run(&workload);
        for probe in [None, Some(&workload)] {
            let auto = SearchEngine::build_auto(&ds, 2, probe);
            assert_eq!(auto.kind(), EngineKind::Auto { threads: 2 });
            assert_eq!(auto.run(&workload), expected, "probe {:?}", probe.is_some());
        }
    }

    #[test]
    fn plan_counts_present_only_for_auto() {
        let ds = dataset();
        let workload = Workload {
            queries: vec![QueryRecord::new("Berlin", 2), QueryRecord::new("Ulm", 1)],
        };
        let scan = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(scan.plan_counts().is_none());
        let auto = SearchEngine::build(&ds, EngineKind::Auto { threads: 1 });
        let _ = auto.run(&workload);
        let counts = auto.plan_counts().expect("auto engines count decisions");
        assert_eq!(
            counts.iter().map(|(_, c)| c).sum::<u64>(),
            workload.len() as u64
        );
        assert!(auto.diag().plan.is_some());
    }

    #[test]
    fn sharded_live_validation_fails_fast_on_bad_configurations() {
        let bad_len = EngineKind::ShardedLive {
            shards: 2,
            by: crate::sharded::ShardBy::Len,
            threads: 1,
            memtable_cap: 4,
        };
        let err = bad_len.validate().unwrap_err();
        assert!(err.contains("--shard-by hash"), "actionable: {err}");
        let bad_cap = EngineKind::ShardedLive {
            shards: 2,
            by: crate::sharded::ShardBy::Hash,
            threads: 1,
            memtable_cap: 0,
        };
        assert!(bad_cap.validate().unwrap_err().contains("--memtable-cap"));
        let good = EngineKind::ShardedLive {
            shards: 4,
            by: crate::sharded::ShardBy::Hash,
            threads: 2,
            memtable_cap: 64,
        };
        assert!(good.validate().is_ok());
        // A single live shard routes trivially, so `len` is accepted.
        let single = EngineKind::ShardedLive {
            shards: 1,
            by: crate::sharded::ShardBy::Len,
            threads: 1,
            memtable_cap: 64,
        };
        assert!(single.validate().is_ok());
    }

    #[test]
    fn names_are_informative() {
        assert!(EngineKind::Index(IdxVariant::I2Compressed)
            .name()
            .contains("Compression"));
        assert!(EngineKind::Qgram {
            q: 3,
            strategy: Strategy::Sequential
        }
        .name()
        .contains("q=3"));
    }
}
