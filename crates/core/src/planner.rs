//! The adaptive query planner: picks a backend per query class from a
//! dataset's statistics.
//!
//! The paper's central finding is a *crossover*: the optimized
//! sequential scan wins on short large-alphabet strings (city names),
//! the trie family wins on long small-alphabet strings (DNA reads).
//! Neither side wins universally, so the choice must follow workload
//! statistics. The [`Planner`] encodes that: it takes a
//! [`StatsSnapshot`] (string-length distribution, alphabet size, `n`),
//! evaluates a paper-shaped cost model for every candidate
//! [`BackendChoice`] over a small grid of query classes
//! (`|q|` relative to the mean length × threshold `k`), and records one
//! explainable [`PlanDecision`] per class.
//!
//! The static model is deterministic — a pure function of the snapshot
//! — which the planner-parity property tests rely on. Because the model
//! is shaped after the paper's machine, not this one, a planner can
//! additionally be built with *calibration multipliers* measured by a
//! micro-probe at build time (see `SearchEngine::build_auto`); the
//! probe runs real queries through each candidate and scales the hints
//! by observed cost, the same way index construction is paid at build
//! time and excluded from query timing.

use simsearch_data::StatsSnapshot;

/// Thresholds above this value share the top `k` class.
pub const MAX_K_CLASS: u32 = 16;

/// Number of query-length classes (short / medium / long vs. the mean).
pub const NUM_LEN_CLASSES: usize = 3;

/// Minimum observations a live `(arm, class)` cell needs before its own
/// ratio is trusted; thinner cells fall back to the arm's pooled ratio
/// (see [`Planner::with_class_samples`]). Low enough that a replan tick
/// converges within one serving burst, high enough that a single
/// outlier query cannot flip a class.
pub const MIN_CELL_OBSERVATIONS: u64 = 8;

/// The execution backends the planner can choose among. Every variant
/// maps to one implementation of the `Backend` trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// Flat sequential scan over the arena (the V4+ rungs), candidates
    /// from the filter chain, banded early-abort verification.
    ScanFlat,
    /// Sorted-prefix scan (V7): LCP-resumable DP over the sorted arena.
    ScanSorted,
    /// Bit-parallel sweep (V8): Myers blocks over the sorted arena,
    /// resumed at the LCP floor; cost is per word, independent of `k`.
    ScanBitParallel,
    /// Uncompressed prefix tree with modern pruning.
    Trie,
    /// Compressed (radix) tree with modern pruning.
    Radix,
    /// Inverted q-gram index (count filter + verification).
    Qgram,
    /// Length-bucketed scan.
    Buckets,
    /// Burkhard–Keller metric tree.
    BkTree,
}

impl BackendChoice {
    /// Every choice, in a fixed order (ties in the cost model resolve
    /// to the earlier entry).
    pub const ALL: [BackendChoice; 8] = [
        BackendChoice::ScanFlat,
        BackendChoice::ScanSorted,
        BackendChoice::ScanBitParallel,
        BackendChoice::Trie,
        BackendChoice::Radix,
        BackendChoice::Qgram,
        BackendChoice::Buckets,
        BackendChoice::BkTree,
    ];

    /// Number of distinct choices.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable short name (used in metrics, bench JSON, and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::ScanFlat => "scan-flat",
            BackendChoice::ScanSorted => "scan-sorted",
            BackendChoice::ScanBitParallel => "scan-bitparallel",
            BackendChoice::Trie => "trie",
            BackendChoice::Radix => "radix",
            BackendChoice::Qgram => "qgram",
            BackendChoice::Buckets => "buckets",
            BackendChoice::BkTree => "bktree",
        }
    }

    /// Dense index into per-choice arrays.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("listed in ALL")
    }
}

/// The class a query falls into: its length relative to the dataset's
/// mean (short / medium / long) × its clamped threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryClass {
    /// 0 = short (`2·|q| < mean`), 1 = medium, 2 = long (`|q| > 2·mean`).
    pub len_class: u8,
    /// `min(k, MAX_K_CLASS)`.
    pub k_class: u8,
}

impl QueryClass {
    /// Classifies a query against a snapshot. Pure integer arithmetic,
    /// so classification is exactly reproducible.
    pub fn of(snapshot: &StatsSnapshot, query_len: usize, k: u32) -> Self {
        let records = snapshot.records.max(1);
        let q = query_len as u64;
        let len_class = if 2 * q * records < snapshot.total_bytes {
            0
        } else if q * records > 2 * snapshot.total_bytes {
            2
        } else {
            1
        };
        Self {
            len_class,
            k_class: k.min(MAX_K_CLASS) as u8,
        }
    }

    /// The query length the cost model evaluates for this class.
    pub fn representative_len(self, snapshot: &StatsSnapshot) -> usize {
        let mean = (snapshot.total_bytes / snapshot.records.max(1)) as usize;
        match self.len_class {
            0 => mean / 4,
            1 => mean,
            _ => (mean * 3).min(snapshot.max_len as usize),
        }
    }

    /// Dense index into the decision table.
    pub fn table_index(self) -> usize {
        self.len_class as usize * (MAX_K_CLASS as usize + 1) + self.k_class as usize
    }

    /// Every class, in table order.
    pub fn all() -> impl Iterator<Item = QueryClass> {
        (0..NUM_LEN_CLASSES as u8).flat_map(|len_class| {
            (0..=MAX_K_CLASS as u8).map(move |k_class| QueryClass {
                len_class,
                k_class,
            })
        })
    }
}

/// One backend's estimated cost for a query class, in rough DP-cell
/// units (comparable across backends, not absolute time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// The backend being estimated.
    pub choice: BackendChoice,
    /// Estimated cost (lower is better).
    pub cost: f64,
}

/// The planner's recorded decision for one query class — kept around
/// so `explain` and `diag()` can show *why* a backend was chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// The class this decision covers.
    pub class: QueryClass,
    /// The winning backend.
    pub chosen: BackendChoice,
    /// All candidate estimates, ascending by cost (ties broken by
    /// [`BackendChoice::ALL`] order).
    pub estimates: Vec<CostEstimate>,
    /// Whether calibration multipliers were applied.
    pub calibrated: bool,
}

/// The paper-shaped static cost model: estimated cost of answering one
/// query of `query_len` bytes at threshold `k` with `choice`, given
/// only the dataset's snapshot. Units are rough DP cells.
///
/// The model has five dials, each tied to a mechanism the paper (or a
/// related-work baseline) measures:
///
/// * **candidates** — length-filter survivors (eq. (5)), from the
///   snapshot's bucketed length histogram;
/// * **banded early-abort verification** — a candidate costs about
///   `min(|q|+1, 2k+2)` rows of width `min(2k+1, |q|+1)` before the
///   row-minimum abort fires;
/// * **prefix sharing** — adjacent records in sorted order share an
///   expected `log_σ(n)` prefix characters, the fraction of rows the
///   sorted scan and the tries never recompute;
/// * **subtree abandonment** — a trie descent abandons a subtree once
///   the row minimum exceeds `k`, bounding explored depth by roughly
///   `log_σ(n) + 2k + 2` characters of the record length;
/// * **structure overheads** — per-record probe/node-hop constants that
///   penalize pointer-chasing structures on short strings.
///
/// On the paper's datasets this reproduces the crossover: for city
/// names (short strings, σ ≈ 60) the flat scan's hint is smallest; for
/// DNA reads (long strings, σ = 5) the radix tree's is.
pub fn static_cost(
    snapshot: &StatsSnapshot,
    choice: BackendChoice,
    query_len: usize,
    k: u32,
) -> f64 {
    let n = snapshot.records as f64;
    if snapshot.records == 0 {
        return 0.0;
    }
    let mean = snapshot.mean_len().max(1.0);
    let sigma = (snapshot.symbols.max(2)) as f64;
    let q = query_len.min(snapshot.max_len as usize + k as usize) as f64;
    let band = (2.0 * k as f64 + 1.0).min(q + 1.0);
    let abort_rows = (q + 1.0).min(2.0 * k as f64 + 2.0);
    let cand = snapshot.length_survivors(query_len, k) as f64;
    // Early-abort verification cost of one candidate, in cells.
    let verify = abort_rows * band;
    // Expected shared-prefix characters between adjacent sorted records,
    // and the fraction of verification rows that sharing skips.
    let lcp = ((n + 1.0).ln() / sigma.ln()).max(0.0);
    let shared = (lcp / mean).min(0.9);
    // Fraction of a record a trie descent explores before the subtree
    // is abandoned.
    let prune = ((lcp + 2.0 * k as f64 + 2.0) / mean).min(1.0);
    const PROBE: f64 = 0.25; // one filter probe, in cell units
    // Pointer-chasing node hops cost far more than arena-local cells
    // (cache misses) — the constant that makes tries lose on short
    // strings despite their pruning, exactly the paper's §5 story.
    const HOP_RADIX: f64 = 32.0;
    const HOP_TRIE: f64 = 48.0;
    match choice {
        BackendChoice::ScanFlat => n * PROBE + cand * verify,
        BackendChoice::Buckets => n * PROBE * 0.5 + cand * verify,
        BackendChoice::ScanSorted => n * (PROBE + 2.0) + cand * verify * (1.0 - shared),
        BackendChoice::ScanBitParallel => {
            // Myers word sweep over the sorted arena: the same one-time
            // sort share as ScanSorted, then each surviving candidate
            // costs one block-column advance per unshared byte. A word
            // advance is branch-free straight-line ALU — about one
            // scalar cell of wall clock despite representing 64 cells —
            // and, unlike every banded arm, the per-byte cost does not
            // grow with `k`: this is the arm that wins long strings and
            // high thresholds, where `band` blows the others up.
            const WORD_EQ: f64 = 1.0;
            let blocks = (q / 64.0).ceil().max(1.0);
            n * (PROBE + 2.0) + cand * (1.0 - shared) * q.max(1.0) * blocks * WORD_EQ
        }
        BackendChoice::Radix => {
            cand * prune * ((1.0 - shared) * verify + HOP_RADIX)
        }
        BackendChoice::Trie => {
            cand * prune * ((1.0 - shared) * verify * 1.5 + HOP_TRIE)
        }
        BackendChoice::Qgram => {
            let gram_len = 2.0; // the workspace's q-gram baseline uses q = 2
            let distinct = sigma.powf(gram_len).min(n * (mean - 1.0).max(1.0)).max(1.0);
            let grams_in_query = (q - gram_len + 1.0).max(0.0);
            let merge = grams_in_query * (n * (mean - 1.0).max(0.0) / distinct);
            let sel = if grams_in_query <= 2.0 * k as f64 {
                1.0
            } else {
                ((2.0 * k as f64 + 1.0) / grams_in_query).max(0.05)
            };
            merge + cand * sel * verify
        }
        BackendChoice::BkTree => {
            // Full-width distance per visited node; triangle-inequality
            // pruning decays toward a linear visit as k grows vs. the
            // string length.
            let exponent = (0.7 + 0.3 * (2.0 * k as f64 + 1.0) / mean).min(1.0);
            n.powf(exponent) * ((q + 1.0) * (mean + 1.0) + 4.0)
        }
    }
}

/// One timed probe measurement: `choice` answered a query of
/// `query_len` bytes at threshold `k` in `nanos` wall-clock
/// nanoseconds. Calibration groups observations by [`QueryClass`], so
/// the model's shape error is corrected *per class* — a backend whose
/// static hint overshoots at `k = 0` and undershoots at `k = 16` (the
/// q-gram index on DNA does exactly this: the posting-list merge
/// dominates its hint at every `k`, while its real cost explodes with
/// `k` through verification) gets a separate correction for each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The backend that was timed.
    pub choice: BackendChoice,
    /// The probe query's length in bytes.
    pub query_len: usize,
    /// The probe query's threshold.
    pub k: u32,
    /// Measured wall-clock nanoseconds for the query.
    pub nanos: f64,
}

/// One aggregated live-observation cell: every query an arm answered
/// for one query class, summed. The serving layer accumulates these in
/// atomic counters (`ObservationGrid`); a replan tick snapshots them
/// and hands the grid to [`Planner::with_class_samples`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellSample {
    /// Total measured wall-clock nanoseconds across the cell's queries.
    pub nanos: u64,
    /// Total statically predicted cost units ([`static_cost`], clamped
    /// to ≥ 1 per query) for exactly those queries.
    pub predicted: u64,
    /// Number of queries in the cell.
    pub count: u64,
}

impl CellSample {
    /// Folds another cell into this one (pooling across classes).
    pub fn merge(&mut self, other: CellSample) {
        self.nanos = self.nanos.saturating_add(other.nanos);
        self.predicted = self.predicted.saturating_add(other.predicted);
        self.count = self.count.saturating_add(other.count);
    }

    fn ratio(self) -> Option<f64> {
        (self.predicted > 0).then(|| {
            (self.nanos as f64 / self.predicted as f64).max(f64::MIN_POSITIVE)
        })
    }
}

/// A top-k routing decision: computed per query (the deepening curve
/// depends on `count` and `max_radius`, which the 51-row threshold
/// table does not key on), kept in the same explainable shape as
/// [`PlanDecision`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopkDecision {
    /// The winning backend.
    pub chosen: BackendChoice,
    /// All candidate estimates, ascending by cost (ties broken by
    /// [`BackendChoice::ALL`] order).
    pub estimates: Vec<CostEstimate>,
    /// Whether top-k calibration multipliers were applied.
    pub calibrated: bool,
}

/// The planner: a snapshot, a candidate set, per-backend calibration
/// multipliers (global and per query class), and the precomputed
/// decision table.
#[derive(Debug, Clone)]
pub struct Planner {
    snapshot: StatsSnapshot,
    candidates: Vec<BackendChoice>,
    /// Per-class multiplier rows, indexed by `QueryClass::table_index`;
    /// classes the probe never covered hold the backend's global ratio.
    class_multipliers: Vec<[f64; BackendChoice::COUNT]>,
    /// Per-arm multipliers for the top-k deepening curve — its
    /// re-entrant radius growth has a different shape than any single
    /// threshold class, so it gets its own correction.
    topk_multipliers: [f64; BackendChoice::COUNT],
    calibrated: bool,
    table: Vec<PlanDecision>,
}

impl Planner {
    /// Builds an uncalibrated planner from a snapshot: decisions are a
    /// pure, deterministic function of `(snapshot, candidates)`.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn new(snapshot: StatsSnapshot, candidates: &[BackendChoice]) -> Self {
        Self::with_multipliers(snapshot, candidates, &[])
    }

    /// Builds a planner whose static hints are scaled by measured
    /// per-backend multipliers (`cost × multiplier`; absent backends
    /// keep 1.0). Passing an empty slice yields the uncalibrated
    /// planner.
    ///
    /// # Panics
    /// Panics if `candidates` is empty or any multiplier is not finite
    /// and positive.
    pub fn with_multipliers(
        snapshot: StatsSnapshot,
        candidates: &[BackendChoice],
        measured: &[(BackendChoice, f64)],
    ) -> Self {
        let mut multipliers = [1.0; BackendChoice::COUNT];
        for &(choice, m) in measured {
            assert!(
                m.is_finite() && m > 0.0,
                "calibration multiplier for {} must be finite and positive",
                choice.name()
            );
            multipliers[choice.index()] = m;
        }
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        Self::from_rows(
            snapshot,
            candidates,
            vec![multipliers; rows],
            [1.0; BackendChoice::COUNT],
            !measured.is_empty(),
        )
    }

    /// Builds a planner calibrated from per-query probe timings.
    ///
    /// Observations are grouped by [`QueryClass`]; for every `(class,
    /// backend)` pair the probe covered, the multiplier is the measured
    /// nanoseconds over the statically predicted cost of exactly those
    /// probe queries — so for probed classes the decision table picks
    /// the *empirically* fastest backend. Classes the probe never
    /// touched fall back to the backend's global ratio (all its
    /// observations pooled), and backends with no observations keep
    /// 1.0. An empty slice yields the uncalibrated planner.
    ///
    /// # Panics
    /// Panics if `candidates` is empty or any observation's `nanos` is
    /// not finite and non-negative.
    pub fn with_observations(
        snapshot: StatsSnapshot,
        candidates: &[BackendChoice],
        observations: &[Observation],
    ) -> Self {
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        // (nanos, predicted) accumulators: per class row and global.
        let mut per_class = vec![[(0.0f64, 0.0f64); BackendChoice::COUNT]; rows];
        let mut global = [(0.0f64, 0.0f64); BackendChoice::COUNT];
        for obs in observations {
            assert!(
                obs.nanos.is_finite() && obs.nanos >= 0.0,
                "calibration timing for {} must be finite and non-negative",
                obs.choice.name()
            );
            let predicted =
                static_cost(&snapshot, obs.choice, obs.query_len, obs.k).max(1.0);
            let row = QueryClass::of(&snapshot, obs.query_len, obs.k).table_index();
            let cell = &mut per_class[row][obs.choice.index()];
            cell.0 += obs.nanos;
            cell.1 += predicted;
            let g = &mut global[obs.choice.index()];
            g.0 += obs.nanos;
            g.1 += predicted;
        }
        let ratio = |(nanos, predicted): (f64, f64)| -> Option<f64> {
            (predicted > 0.0).then(|| (nanos / predicted).max(f64::MIN_POSITIVE))
        };
        let fallback: Vec<f64> = global
            .iter()
            .map(|&g| ratio(g).unwrap_or(1.0))
            .collect();
        let class_multipliers: Vec<[f64; BackendChoice::COUNT]> = per_class
            .iter()
            .map(|row| {
                std::array::from_fn(|i| ratio(row[i]).unwrap_or(fallback[i]))
            })
            .collect();
        Self::from_rows(
            snapshot,
            candidates,
            class_multipliers,
            [1.0; BackendChoice::COUNT],
            !observations.is_empty(),
        )
    }

    /// Builds a planner re-calibrated from *live* per-(arm, class)
    /// latency aggregates — the replan tick's constructor. Unlike
    /// [`Planner::with_observations`] (which trusts every probe query,
    /// because the build-time probe is controlled), live cells are
    /// noisy and unevenly filled, so a cell only speaks for itself once
    /// it holds at least `min_count` queries; thinner cells fall back
    /// to the arm's pooled ratio across all classes, and arms the
    /// workload never routed to keep 1.0.
    ///
    /// `cells` is indexed `[QueryClass::table_index()][choice.index()]`;
    /// `topk` holds one pooled cell per arm for the iterative-deepening
    /// curve (see [`Planner::decide_topk`]).
    ///
    /// Every multiplier is positive and finite by construction, and
    /// bounded by the cell's total nanoseconds (each query contributes
    /// ≥ 1 predicted unit). Scaling all `nanos` by a common power of
    /// two scales every multiplier exactly, so the argmin arm of every
    /// class is invariant under clock-unit changes — the
    /// `calibration_props` suite holds the planner to this.
    ///
    /// # Panics
    /// Panics if `candidates` is empty or the row count of `cells` is
    /// not the table size.
    pub fn with_class_samples(
        snapshot: StatsSnapshot,
        candidates: &[BackendChoice],
        cells: &[[CellSample; BackendChoice::COUNT]],
        topk: &[CellSample; BackendChoice::COUNT],
        min_count: u64,
    ) -> Self {
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        assert_eq!(cells.len(), rows, "one cell row per query class");
        let mut pooled = [CellSample::default(); BackendChoice::COUNT];
        for row in cells {
            for (acc, &cell) in pooled.iter_mut().zip(row.iter()) {
                acc.merge(cell);
            }
        }
        let trusted = |cell: CellSample| -> Option<f64> {
            if cell.count >= min_count.max(1) {
                cell.ratio()
            } else {
                None
            }
        };
        let fallback: Vec<f64> = pooled
            .iter()
            .map(|&arm| trusted(arm).unwrap_or(1.0))
            .collect();
        let class_multipliers: Vec<[f64; BackendChoice::COUNT]> = cells
            .iter()
            .map(|row| {
                std::array::from_fn(|i| trusted(row[i]).unwrap_or(fallback[i]))
            })
            .collect();
        let topk_multipliers: [f64; BackendChoice::COUNT] =
            std::array::from_fn(|i| trusted(topk[i]).unwrap_or(fallback[i]));
        let calibrated = pooled.iter().any(|arm| arm.count >= min_count.max(1))
            || topk.iter().any(|arm| arm.count >= min_count.max(1));
        Self::from_rows(
            snapshot,
            candidates,
            class_multipliers,
            topk_multipliers,
            calibrated,
        )
    }

    /// Rebuilds a planner from persisted multiplier rows (the
    /// calibration section of the index file). Returns `None` — never
    /// panics — when the shape or values are off: wrong row count, a
    /// non-finite or non-positive multiplier, or an empty candidate
    /// set. Loaders treat `None` as "fall back to the static table".
    pub fn from_calibrated_rows(
        snapshot: StatsSnapshot,
        candidates: &[BackendChoice],
        class_multipliers: Vec<[f64; BackendChoice::COUNT]>,
        topk_multipliers: [f64; BackendChoice::COUNT],
    ) -> Option<Self> {
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        if candidates.is_empty() || class_multipliers.len() != rows {
            return None;
        }
        let ok = |m: f64| m.is_finite() && m > 0.0;
        if !class_multipliers.iter().flatten().copied().all(ok)
            || !topk_multipliers.iter().copied().all(ok)
        {
            return None;
        }
        Some(Self::from_rows(
            snapshot,
            candidates,
            class_multipliers,
            topk_multipliers,
            true,
        ))
    }

    fn from_rows(
        snapshot: StatsSnapshot,
        candidates: &[BackendChoice],
        class_multipliers: Vec<[f64; BackendChoice::COUNT]>,
        topk_multipliers: [f64; BackendChoice::COUNT],
        calibrated: bool,
    ) -> Self {
        assert!(!candidates.is_empty(), "planner needs at least one candidate");
        let mut planner = Self {
            snapshot,
            candidates: candidates.to_vec(),
            class_multipliers,
            topk_multipliers,
            calibrated,
            table: Vec::new(),
        };
        planner.table = QueryClass::all()
            .map(|class| planner.decide_class(class))
            .collect();
        planner
    }

    /// The snapshot the planner was built from.
    pub fn snapshot(&self) -> &StatsSnapshot {
        &self.snapshot
    }

    /// The candidate backends the planner chooses among.
    pub fn candidates(&self) -> &[BackendChoice] {
        &self.candidates
    }

    /// Whether calibration multipliers were applied.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// The (possibly calibrated) cost hint for one backend, scaled by
    /// the multiplier of the class `(query_len, k)` falls into.
    pub fn cost(&self, choice: BackendChoice, query_len: usize, k: u32) -> f64 {
        let class = QueryClass::of(&self.snapshot, query_len, k);
        self.cost_in_class(class, choice, query_len, k)
    }

    fn cost_in_class(
        &self,
        class: QueryClass,
        choice: BackendChoice,
        query_len: usize,
        k: u32,
    ) -> f64 {
        static_cost(&self.snapshot, choice, query_len, k)
            * self.class_multipliers[class.table_index()][choice.index()]
    }

    /// The recorded decision covering a concrete query — a table
    /// lookup, cheap enough for the per-query hot path.
    pub fn decide(&self, query_len: usize, k: u32) -> &PlanDecision {
        &self.table[QueryClass::of(&self.snapshot, query_len, k).table_index()]
    }

    /// The per-class multiplier rows, in [`QueryClass::all`] order —
    /// the calibration state the persistence layer serializes.
    pub fn class_multipliers(&self) -> &[[f64; BackendChoice::COUNT]] {
        &self.class_multipliers
    }

    /// The per-arm top-k curve multipliers.
    pub fn topk_multipliers(&self) -> &[f64; BackendChoice::COUNT] {
        &self.topk_multipliers
    }

    /// The radius sequence iterative deepening probes for a given
    /// `max_radius`: 0, then doubling with a floor of +1, clamped —
    /// exactly the loop in [`crate::topk::search_top_k_with`]. The cost
    /// model must sum over this sequence, not a single radius: a top-k
    /// call re-enters the backend once per scheduled radius.
    pub fn topk_schedule(max_radius: u32) -> Vec<u32> {
        let mut schedule = vec![0u32];
        let mut radius = 0u32;
        while radius < max_radius {
            radius = (radius * 2).clamp(radius + 1, max_radius);
            schedule.push(radius);
        }
        schedule
    }

    /// Estimated cost of a full top-k deepening run on one backend:
    /// the static hint summed over every scheduled radius up to the
    /// expected stopping point — the first radius whose length-filter
    /// survivor count reaches `count` (deepening stops as soon as
    /// `count` matches exist, and survivors bound matches from above) —
    /// scaled by the arm's top-k multiplier. Distinct from
    /// [`Planner::cost`]: a threshold query pays one probe, a top-k
    /// query pays a re-entrant series whose late, wide radii dominate.
    pub fn topk_cost(
        &self,
        choice: BackendChoice,
        query_len: usize,
        count: usize,
        max_radius: u32,
    ) -> f64 {
        self.topk_static_units(choice, query_len, count, max_radius)
            * self.topk_multipliers[choice.index()]
    }

    /// The unscaled deepening cost — what [`Planner::topk_cost`] is
    /// before the arm's multiplier. Routed backends record this as the
    /// predicted-units side of a top-k observation, so the derived
    /// multiplier stays a measured-over-predicted ratio.
    pub fn topk_static_units(
        &self,
        choice: BackendChoice,
        query_len: usize,
        count: usize,
        max_radius: u32,
    ) -> f64 {
        let mut total = 0.0;
        for radius in Self::topk_schedule(max_radius) {
            total += static_cost(&self.snapshot, choice, query_len, radius);
            let survivors = self.snapshot.length_survivors(query_len, radius);
            if count > 0 && survivors as usize >= count {
                break;
            }
        }
        total
    }

    /// Routes a whole top-k deepening run to one backend — the top-k
    /// twin of [`Planner::decide`], computed per query because the
    /// curve depends on `count` and `max_radius`, which the threshold
    /// table does not key on. May disagree with the threshold-table
    /// decision for the same query length; the parity suite checks the
    /// routed arm's answers against the exhaustive oracle either way.
    pub fn decide_topk(
        &self,
        query_len: usize,
        count: usize,
        max_radius: u32,
    ) -> TopkDecision {
        let mut estimates: Vec<CostEstimate> = self
            .candidates
            .iter()
            .map(|&choice| CostEstimate {
                choice,
                cost: self.topk_cost(choice, query_len, count, max_radius),
            })
            .collect();
        estimates.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("cost hints are finite")
                .then(a.choice.index().cmp(&b.choice.index()))
        });
        TopkDecision {
            chosen: estimates[0].choice,
            estimates,
            calibrated: self.calibrated,
        }
    }

    /// Every recorded decision, in [`QueryClass::all`] order.
    pub fn decisions(&self) -> &[PlanDecision] {
        &self.table
    }

    fn decide_class(&self, class: QueryClass) -> PlanDecision {
        let q = class.representative_len(&self.snapshot);
        let k = class.k_class as u32;
        let mut estimates: Vec<CostEstimate> = self
            .candidates
            .iter()
            .map(|&choice| CostEstimate {
                choice,
                // Scale by this class's own multiplier row: the
                // representative length may classify differently when
                // the length distribution is tight (DNA reads), and the
                // decision must use the row it is computed for.
                cost: self.cost_in_class(class, choice, q, k),
            })
            .collect();
        estimates.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("cost hints are finite")
                .then(a.choice.index().cmp(&b.choice.index()))
        });
        PlanDecision {
            class,
            chosen: estimates[0].choice,
            estimates,
            calibrated: self.calibrated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use simsearch_data::Dataset;

    fn snapshot_of(records: &[&str]) -> StatsSnapshot {
        StatsSnapshot::compute(&Dataset::from_records(records.iter().copied()))
    }

    #[test]
    fn decisions_are_deterministic_for_a_fixed_snapshot() {
        let snap = snapshot_of(&["Berlin", "Bern", "Bonn", "Ulm"]);
        let a = Planner::new(snap.clone(), &BackendChoice::ALL);
        let b = Planner::new(snap, &BackendChoice::ALL);
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn decide_agrees_with_the_precomputed_table() {
        let snap = snapshot_of(&["kitten", "sitting", "mitten"]);
        let planner = Planner::new(snap.clone(), &BackendChoice::ALL);
        for q_len in [0, 1, 3, 6, 9, 40] {
            for k in [0, 1, 4, 40] {
                let d = planner.decide(q_len, k);
                assert_eq!(d.class, QueryClass::of(&snap, q_len, k));
                assert_eq!(d, &planner.decisions()[d.class.table_index()]);
            }
        }
    }

    #[test]
    fn static_model_reproduces_the_paper_crossover() {
        // Short large-alphabet strings: the flat scan's hint beats the
        // tries'. Long small-alphabet strings: the radix tree's wins.
        let city = StatsSnapshot::compute(&presets::city(4000).dataset);
        let dna = StatsSnapshot::compute(&presets::dna(2000).dataset);
        let city_scan = static_cost(&city, BackendChoice::ScanFlat, 10, 2);
        let city_radix = static_cost(&city, BackendChoice::Radix, 10, 2);
        let city_trie = static_cost(&city, BackendChoice::Trie, 10, 2);
        assert!(
            city_scan < city_trie,
            "city: scan {city_scan} should beat trie {city_trie}"
        );
        assert!(
            city_scan < city_radix,
            "city: scan {city_scan} should beat radix {city_radix}"
        );
        let dna_scan = static_cost(&dna, BackendChoice::ScanFlat, 104, 8);
        let dna_radix = static_cost(&dna, BackendChoice::Radix, 104, 8);
        assert!(
            dna_radix < dna_scan,
            "dna: radix {dna_radix} should beat scan {dna_scan}"
        );
        // And the relative margin flips across datasets.
        assert!(city_radix / city_scan > dna_radix / dna_scan);
    }

    #[test]
    fn bitparallel_arm_wins_long_strings_at_high_k() {
        // V8's hint is per word and independent of the band, so on DNA
        // reads at the top threshold it must undercut every arm whose
        // verification grows with k — giving `auto` a new best arm on
        // long strings, per the roadmap target.
        let dna = StatsSnapshot::compute(&presets::dna(2000).dataset);
        let v8 = static_cost(&dna, BackendChoice::ScanBitParallel, 104, 16);
        for other in [
            BackendChoice::ScanFlat,
            BackendChoice::ScanSorted,
            BackendChoice::Radix,
            BackendChoice::Qgram,
        ] {
            let cost = static_cost(&dna, other, 104, 16);
            assert!(
                v8 < cost,
                "dna k=16: bit-parallel {v8} should beat {} {cost}",
                other.name()
            );
        }
    }

    #[test]
    fn calibration_multipliers_change_the_winner() {
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let base = Planner::new(snap.clone(), &BackendChoice::ALL);
        let winner = base.decide(4, 1).chosen;
        // Make the static winner look 1000× slower than measured.
        let skewed =
            Planner::with_multipliers(snap, &BackendChoice::ALL, &[(winner, 1000.0)]);
        assert!(skewed.is_calibrated());
        assert_ne!(skewed.decide(4, 1).chosen, winner);
    }

    #[test]
    fn observations_calibrate_each_class_independently() {
        // Two arms, two k classes. The probe says: A is fast at k=0 but
        // slow at k=2, B the reverse. A single arm-wide ratio cannot
        // express that; the per-class table must route k=0 to A and
        // k=2 to B.
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let arms = [BackendChoice::ScanFlat, BackendChoice::Radix];
        let obs = |choice, k, nanos| Observation {
            choice,
            query_len: 4,
            k,
            nanos,
        };
        let planner = Planner::with_observations(
            snap,
            &arms,
            &[
                obs(BackendChoice::ScanFlat, 0, 10.0),
                obs(BackendChoice::Radix, 0, 10_000.0),
                obs(BackendChoice::ScanFlat, 2, 10_000.0),
                obs(BackendChoice::Radix, 2, 10.0),
            ],
        );
        assert!(planner.is_calibrated());
        assert_eq!(planner.decide(4, 0).chosen, BackendChoice::ScanFlat);
        assert_eq!(planner.decide(4, 2).chosen, BackendChoice::Radix);
    }

    #[test]
    fn unprobed_classes_fall_back_to_the_global_ratio() {
        // Only k=1 is probed, and the probe makes the static winner
        // look 10^6× slower than measured reality makes the other arm.
        // The k=1 decision flips; an unprobed class reuses each arm's
        // pooled ratio, so it flips the same way rather than reverting
        // to the uncalibrated table.
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let base = Planner::new(snap.clone(), &BackendChoice::ALL);
        let winner = base.decide(4, 1).chosen;
        let loser = base.decide(4, 1).estimates[1].choice;
        let mk = |choice, nanos| Observation {
            choice,
            query_len: 4,
            k: 1,
            nanos,
        };
        let planner = Planner::with_observations(
            snap,
            &BackendChoice::ALL,
            &[mk(winner, 1e9), mk(loser, 1.0)],
        );
        assert_eq!(planner.decide(4, 1).chosen, loser);
        // k=3 was never probed: the pooled per-arm ratios still apply.
        assert_ne!(planner.decide(4, 3).chosen, winner);
    }

    #[test]
    fn empty_observations_match_the_static_planner() {
        let snap = snapshot_of(&["kitten", "sitting", "mitten"]);
        let a = Planner::new(snap.clone(), &BackendChoice::ALL);
        let b = Planner::with_observations(snap, &BackendChoice::ALL, &[]);
        assert!(!b.is_calibrated());
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn ties_resolve_to_the_fixed_choice_order() {
        // Empty dataset: every hint is 0, so the tie falls to the
        // earliest entry of `BackendChoice::ALL` among the candidates.
        let snap = StatsSnapshot::compute(&Dataset::new());
        let planner = Planner::new(
            snap,
            &[BackendChoice::Radix, BackendChoice::ScanFlat],
        );
        for d in planner.decisions() {
            assert_eq!(d.chosen, BackendChoice::ScanFlat);
        }
    }

    fn cell(nanos: u64, predicted: u64, count: u64) -> CellSample {
        CellSample {
            nanos,
            predicted,
            count,
        }
    }

    #[test]
    fn class_samples_respect_the_min_count_gate() {
        // A thin cell (1 observation) claiming the static winner is
        // 10^6× slow must NOT flip the class on its own; the same
        // evidence above the gate must.
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let base = Planner::new(snap.clone(), &BackendChoice::ALL);
        let winner = base.decide(4, 1).chosen;
        let class = QueryClass::of(&snap, 4, 1);
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let mut cells = vec![[CellSample::default(); BackendChoice::COUNT]; rows];
        let topk = [CellSample::default(); BackendChoice::COUNT];
        cells[class.table_index()][winner.index()] = cell(1_000_000_000, 1_000, 1);
        let thin = Planner::with_class_samples(
            snap.clone(),
            &BackendChoice::ALL,
            &cells,
            &topk,
            8,
        );
        assert_eq!(thin.decide(4, 1).chosen, winner, "thin cell must not flip");
        cells[class.table_index()][winner.index()] =
            cell(8_000_000_000, 8_000, 8);
        let fat = Planner::with_class_samples(
            snap,
            &BackendChoice::ALL,
            &cells,
            &topk,
            8,
        );
        assert!(fat.is_calibrated());
        assert_ne!(fat.decide(4, 1).chosen, winner, "fat cell must flip");
    }

    #[test]
    fn thin_cells_fall_back_to_the_pooled_arm_ratio() {
        // The arm has plenty of pooled evidence (spread over classes,
        // each cell below the gate): the pooled ratio applies
        // everywhere, including classes with zero observations.
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let base = Planner::new(snap.clone(), &BackendChoice::ALL);
        let winner = base.decide(4, 1).chosen;
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let mut cells = vec![[CellSample::default(); BackendChoice::COUNT]; rows];
        for row in cells.iter_mut().take(4) {
            row[winner.index()] = cell(2_000_000_000, 2_000, 2);
        }
        let planner = Planner::with_class_samples(
            snap,
            &BackendChoice::ALL,
            &cells,
            &[CellSample::default(); BackendChoice::COUNT],
            8,
        );
        // Pooled: 8 observations at ratio 10^6 — trusted, applied to
        // every class (each individual cell held only 2).
        assert!(planner.is_calibrated());
        for k in [0, 1, 5, 16] {
            assert_ne!(planner.decide(4, k).chosen, winner);
        }
    }

    #[test]
    fn empty_class_samples_match_the_static_planner() {
        let snap = snapshot_of(&["kitten", "sitting", "mitten"]);
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let a = Planner::new(snap.clone(), &BackendChoice::ALL);
        let b = Planner::with_class_samples(
            snap,
            &BackendChoice::ALL,
            &vec![[CellSample::default(); BackendChoice::COUNT]; rows],
            &[CellSample::default(); BackendChoice::COUNT],
            MIN_CELL_OBSERVATIONS,
        );
        assert!(!b.is_calibrated());
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn topk_schedule_mirrors_the_deepening_loop() {
        assert_eq!(Planner::topk_schedule(0), vec![0]);
        assert_eq!(Planner::topk_schedule(1), vec![0, 1]);
        assert_eq!(Planner::topk_schedule(3), vec![0, 1, 2, 3]);
        assert_eq!(Planner::topk_schedule(16), vec![0, 1, 2, 4, 8, 16]);
        assert_eq!(Planner::topk_schedule(20), vec![0, 1, 2, 4, 8, 16, 20]);
    }

    #[test]
    fn topk_cost_sums_the_schedule_and_uses_its_own_multipliers() {
        let snap = snapshot_of(&["Berlin", "Bern", "Bonn", "Ulm"]);
        let planner = Planner::new(snap.clone(), &BackendChoice::ALL);
        // Oversized count: no stopping radius, so the cost is exactly
        // the sum of static hints over the whole schedule.
        let by_hand: f64 = Planner::topk_schedule(8)
            .into_iter()
            .map(|r| static_cost(&snap, BackendChoice::ScanFlat, 6, r))
            .sum();
        let modeled = planner.topk_cost(BackendChoice::ScanFlat, 6, 1_000, 8);
        assert!((by_hand - modeled).abs() < 1e-9);
        // A top-k-only slowdown must reroute TOPK without touching the
        // threshold table.
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let cells = vec![[CellSample::default(); BackendChoice::COUNT]; rows];
        let static_topk = planner.decide_topk(6, 2, 8).chosen;
        let mut topk = [CellSample::default(); BackendChoice::COUNT];
        topk[static_topk.index()] = cell(8_000_000_000, 8_000, 8);
        let skewed = Planner::with_class_samples(
            snap,
            &BackendChoice::ALL,
            &cells,
            &topk,
            8,
        );
        assert_ne!(skewed.decide_topk(6, 2, 8).chosen, static_topk);
        assert_eq!(
            skewed.decide(6, 2).chosen,
            planner.decide(6, 2).chosen,
            "threshold table must not piggyback on the top-k curve"
        );
    }

    #[test]
    fn calibrated_rows_round_trip_and_reject_bad_shapes() {
        let snap = snapshot_of(&["aaaa", "aaab", "aabb", "abbb"]);
        let rows = NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1);
        let mut cells = vec![[CellSample::default(); BackendChoice::COUNT]; rows];
        cells[QueryClass::of(&snap, 4, 1).table_index()]
            [BackendChoice::ScanFlat.index()] = cell(9_000, 9_000, 9);
        let original = Planner::with_class_samples(
            snap.clone(),
            &BackendChoice::ALL,
            &cells,
            &[CellSample::default(); BackendChoice::COUNT],
            8,
        );
        let rebuilt = Planner::from_calibrated_rows(
            snap.clone(),
            &BackendChoice::ALL,
            original.class_multipliers().to_vec(),
            *original.topk_multipliers(),
        )
        .expect("valid rows reconstruct");
        assert_eq!(original.decisions(), rebuilt.decisions());
        assert!(Planner::from_calibrated_rows(
            snap.clone(),
            &BackendChoice::ALL,
            vec![[1.0; BackendChoice::COUNT]; 3],
            [1.0; BackendChoice::COUNT],
        )
        .is_none());
        let mut bad = vec![[1.0; BackendChoice::COUNT]; rows];
        bad[0][0] = f64::NAN;
        assert!(Planner::from_calibrated_rows(
            snap.clone(),
            &BackendChoice::ALL,
            bad,
            [1.0; BackendChoice::COUNT],
        )
        .is_none());
        assert!(Planner::from_calibrated_rows(
            snap,
            &[],
            vec![[1.0; BackendChoice::COUNT]; rows],
            [1.0; BackendChoice::COUNT],
        )
        .is_none());
    }

    #[test]
    fn table_covers_every_class_exactly_once() {
        let snap = snapshot_of(&["x", "yy", "zzz"]);
        let planner = Planner::new(snap, &BackendChoice::ALL);
        let classes: Vec<QueryClass> = QueryClass::all().collect();
        assert_eq!(planner.decisions().len(), classes.len());
        assert_eq!(
            classes.len(),
            NUM_LEN_CLASSES * (MAX_K_CLASS as usize + 1)
        );
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(c.table_index(), i);
            assert_eq!(planner.decisions()[i].class, *c);
        }
    }
}
