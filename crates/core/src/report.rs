//! Table formatting for the reproduction harness: renders measurement
//! grids in the shape of the paper's appendix tables.

use crate::experiment::Measurement;

/// A rows × columns table of formatted cells with a title.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. "Table III. Evaluation of the sequential
    /// solution on the city name data set").
    pub title: String,
    /// Column headers (first column is the row-label column).
    pub headers: Vec<String>,
    /// Rows: label + one cell per data column.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of raw cells.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Appends a row of measurements formatted as seconds.
    pub fn push_measurements(&mut self, label: impl Into<String>, ms: &[Measurement]) {
        self.push_row(label, ms.iter().map(|m| format_secs(m.secs())).collect());
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| | {} |\n", self.headers[1..].join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len().max(1))
        ));
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {} | {} |\n", label, cells.join(" | ")));
        }
        out
    }
}

impl std::fmt::Display for Table {
    /// Plain-text rendering with aligned columns.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.title)?;
        // Column widths.
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < cols {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            writeln!(f, "  {}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        for (label, cells) in &self.rows {
            let mut all = vec![label.clone()];
            all.extend(cells.iter().cloned());
            write_row(f, &all)?;
        }
        Ok(())
    }
}

/// Formats seconds the way the paper prints them ("16.92 sec").
pub fn format_secs(secs: f64) -> String {
    format!("{secs:.2} sec")
}

/// Formats a ratio as a percentage.
pub fn format_percent(ratio: f64) -> String {
    format!("{:.0} %", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_plain_text() {
        let mut t = Table::new("Table X", &["Approach", "100", "500"]);
        t.push_row("1) Base", vec!["16.92 sec".into(), "84.80 sec".into()]);
        t.push_row("2) Faster", vec!["3.71 sec".into(), "17.81 sec".into()]);
        let text = t.to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("1) Base"));
        assert!(text.contains("84.80 sec"));
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", &["Approach", "100"]);
        t.push_row("row", vec!["1.00 sec".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### T"));
        assert!(md.contains("| row | 1.00 sec |"));
    }

    #[test]
    fn pushes_measurements_as_seconds() {
        let mut t = Table::new("T", &["Approach", "100"]);
        t.push_measurements(
            "m",
            &[crate::experiment::Measurement {
                queries: 100,
                wall: Duration::from_millis(1500),
                total_matches: 7,
            }],
        );
        assert_eq!(t.rows[0].1[0], "1.50 sec");
    }

    #[test]
    fn formatters() {
        assert_eq!(format_secs(16.923), "16.92 sec");
        assert_eq!(format_percent(0.58), "58 %");
    }
}
