//! Cross-validation of search implementations — the paper's correctness
//! methodology made executable.
//!
//! §3.7: "The results of the first solution will be used for the
//! comparison in the other approaches. This guarantees the correctness of
//! the results." [`cross_validate`] runs a workload through a reference
//! engine and any number of candidate engines and reports the first
//! divergence precisely.

use crate::engine::SearchEngine;
use simsearch_data::{MatchSet, Workload};

/// A divergence between two engines on one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Offending engine's name.
    pub engine: String,
    /// Index of the query within the workload.
    pub query_index: usize,
    /// What the reference returned.
    pub expected: MatchSet,
    /// What the offending engine returned.
    pub actual: MatchSet,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine {} diverges on query #{}: expected {} matches {:?}, got {} matches {:?}",
            self.engine,
            self.query_index,
            self.expected.len(),
            self.expected.ids(),
            self.actual.len(),
            self.actual.ids(),
        )
    }
}

/// Compares per-query results of one engine against reference results.
pub fn compare_results(
    engine_name: &str,
    reference: &[MatchSet],
    actual: &[MatchSet],
) -> Result<(), Mismatch> {
    assert_eq!(
        reference.len(),
        actual.len(),
        "result vectors must cover the same workload"
    );
    for (i, (want, got)) in reference.iter().zip(actual.iter()).enumerate() {
        if want != got {
            return Err(Mismatch {
                engine: engine_name.to_string(),
                query_index: i,
                expected: want.clone(),
                actual: got.clone(),
            });
        }
    }
    Ok(())
}

/// Runs `workload` through `reference` and every candidate engine and
/// verifies all results are identical.
pub fn cross_validate(
    reference: &SearchEngine<'_>,
    candidates: &[SearchEngine<'_>],
    workload: &Workload,
) -> Result<(), Mismatch> {
    let truth = reference.run(workload);
    for engine in candidates {
        let results = engine.run(workload);
        compare_results(&engine.name(), &truth, &results)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, IdxVariant};
    use simsearch_data::{Dataset, Match, QueryRecord};
    use simsearch_scan::SeqVariant;

    #[test]
    fn identical_engines_pass() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
        let reference = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let candidates = vec![
            SearchEngine::build(&ds, EngineKind::Index(IdxVariant::I1BaseTrie)),
            SearchEngine::build(&ds, EngineKind::Index(IdxVariant::I2Compressed)),
        ];
        let w = Workload {
            queries: vec![QueryRecord::new("Bern", 1), QueryRecord::new("Ulm", 0)],
        };
        cross_validate(&reference, &candidates, &w).expect("engines must agree");
    }

    #[test]
    fn mismatch_is_reported_with_context() {
        let a = vec![MatchSet::from_unsorted(vec![Match::new(1, 0)])];
        let b = vec![MatchSet::from_unsorted(vec![Match::new(2, 0)])];
        let err = compare_results("broken", &a, &b).unwrap_err();
        assert_eq!(err.query_index, 0);
        assert_eq!(err.engine, "broken");
        let text = err.to_string();
        assert!(text.contains("broken"));
        assert!(text.contains("query #0"));
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn length_mismatch_panics() {
        let a = vec![MatchSet::default()];
        let _ = compare_results("x", &a, &[]);
    }
}
