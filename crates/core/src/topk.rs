//! Top-k nearest-neighbour search: the `count` records closest to a
//! query by edit distance.
//!
//! Applications that motivated the paper's introduction ("the
//! application has to find all relevant results") usually want *the best
//! few* suggestions rather than a fixed radius. This module answers that
//! by iterative deepening over the threshold: radius 0, then doubling,
//! until `count` matches exist — each probe reuses the ordinary
//! threshold search, so the result provably contains the true `count`
//! nearest records.

use crate::engine::SearchEngine;
use simsearch_data::Match;

/// The `count` records nearest to `query`, ordered by
/// `(distance, record id)`. At most `max_radius` is explored: if fewer
/// than `count` records exist within it, fewer matches are returned.
/// # Examples
///
/// ```
/// use simsearch_core::{search_top_k, EngineKind, SearchEngine, SeqVariant};
/// use simsearch_data::Dataset;
///
/// let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
/// let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
/// let top = search_top_k(&engine, b"Berlim", 2, 8);
/// assert_eq!(top[0].id, 0); // Berlin, distance 1
/// assert_eq!(top.len(), 2);
/// ```
///
/// Ties at the cut-off are broken by record id, so the result is
/// deterministic.
pub fn search_top_k(
    engine: &SearchEngine<'_>,
    query: &[u8],
    count: usize,
    max_radius: u32,
) -> Vec<Match> {
    search_top_k_with(|radius| engine.search(query, radius), count, max_radius)
}

/// The iterative-deepening loop behind [`search_top_k`], generic over
/// the threshold-search probe. Callers that are not a [`SearchEngine`]
/// (the serving layer answers through a prepared scan that also counts
/// DP cells) reuse the deepening logic through this entry point.
pub fn search_top_k_with(
    mut probe: impl FnMut(u32) -> simsearch_data::MatchSet,
    count: usize,
    max_radius: u32,
) -> Vec<Match> {
    if count == 0 {
        return Vec::new();
    }
    let mut radius = 0u32;
    loop {
        let found = probe(radius);
        if found.len() >= count || radius >= max_radius {
            // All records with distance ≤ radius are present, so the
            // `count` smallest of them are the global top-k (any record
            // outside has distance > radius ≥ the cut-off distance).
            let mut matches: Vec<Match> = found.iter().copied().collect();
            matches.sort_unstable_by_key(|m| (m.distance, m.id));
            matches.truncate(count);
            return matches;
        }
        radius = (radius * 2).clamp(radius + 1, max_radius);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, IdxVariant};
    use simsearch_data::Dataset;
    use simsearch_distance::levenshtein;
    use simsearch_scan::SeqVariant;

    fn engine(ds: &Dataset) -> SearchEngine<'_> {
        SearchEngine::build(ds, EngineKind::Scan(SeqVariant::V4Flat))
    }

    #[test]
    fn returns_nearest_records_in_order() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm", "Berl"]);
        let e = engine(&ds);
        let top = search_top_k(&e, b"Berlin", 3, 16);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].id, 0); // exact match first
        assert_eq!(top[0].distance, 0);
        // Distances are non-decreasing.
        assert!(top.windows(2).all(|w| w[0].distance <= w[1].distance));
        // Verify against the oracle: these are the 3 smallest distances.
        let mut all: Vec<(u32, u32)> = ds
            .iter()
            .map(|(id, r)| (levenshtein(b"Berlin", r), id))
            .collect();
        all.sort_unstable();
        for (m, &(d, id)) in top.iter().zip(all.iter()) {
            assert_eq!((m.distance, m.id), (d, id));
        }
    }

    #[test]
    fn respects_max_radius() {
        let ds = Dataset::from_records(["aaaaaaaa", "bbbbbbbb"]);
        let e = engine(&ds);
        let top = search_top_k(&e, b"cccccccc", 2, 3);
        // Both records are at distance 8 > max_radius 3.
        assert!(top.is_empty());
    }

    #[test]
    fn works_through_an_index_engine() {
        let ds = Dataset::from_records(["kitten", "sitting", "mitten", "bitten", "kitchen"]);
        let idx = SearchEngine::build(&ds, EngineKind::Index(IdxVariant::I2Compressed));
        let scan = engine(&ds);
        let a = search_top_k(&idx, b"kitten", 4, 16);
        let b = search_top_k(&scan, b"kitten", 4, 16);
        assert_eq!(a, b);
        assert_eq!(a[0].id, 0);
    }

    #[test]
    fn count_zero_and_oversized_count() {
        let ds = Dataset::from_records(["a", "b"]);
        let e = engine(&ds);
        assert!(search_top_k(&e, b"a", 0, 8).is_empty());
        let all = search_top_k(&e, b"a", 10, 8);
        assert_eq!(all.len(), 2);
    }
}
