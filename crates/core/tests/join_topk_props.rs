//! Property tests for the similarity join and top-k search.

use simsearch_core::join::{index_join, nested_loop_join, parallel_sorted_join, sorted_join};
use simsearch_core::Strategy as ExecStrategy;
use simsearch_core::{search_top_k, EngineKind, SearchEngine, SeqVariant};
use simsearch_data::Dataset;
use simsearch_distance::levenshtein;
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen};

const SEED: u64 = 0x10_1703;

fn word() -> Gen<Vec<u8>> {
    gen::bytes_from(b"abcN", 0..8)
}

fn corpus() -> Gen<Vec<Vec<u8>>> {
    gen::vec_of(word(), 0..15)
}

#[test]
fn all_joins_agree_with_nested_loop() {
    check(
        "all_joins_agree_with_nested_loop",
        Config::default().seed(SEED),
        &gen::zip(corpus(), gen::u32_in(0..4)),
        |(words, k)| {
            let ds = Dataset::from_records(words);
            let reference = nested_loop_join(&ds, *k);
            prop_assert_eq!(sorted_join(&ds, *k), reference.clone());
            prop_assert_eq!(index_join(&ds, *k), reference.clone());
            prop_assert_eq!(
                parallel_sorted_join(&ds, *k, ExecStrategy::WorkQueue { threads: 3 }),
                reference
            );
            Ok(())
        },
    );
}

#[test]
fn join_pairs_satisfy_the_threshold_exactly() {
    check(
        "join_pairs_satisfy_the_threshold_exactly",
        Config::default().seed(SEED),
        &gen::zip(corpus(), gen::u32_in(0..4)),
        |(words, k)| {
            let ds = Dataset::from_records(words);
            let pairs = sorted_join(&ds, *k);
            // Every reported pair is within k with the right distance ...
            for p in &pairs {
                prop_assert!(p.left < p.right);
                prop_assert_eq!(p.distance, levenshtein(ds.get(p.left), ds.get(p.right)));
                prop_assert!(p.distance <= *k);
            }
            // ... and no qualifying pair is missing.
            let n = ds.len() as u32;
            let mut expected = 0usize;
            for i in 0..n {
                for j in (i + 1)..n {
                    if levenshtein(ds.get(i), ds.get(j)) <= *k {
                        expected += 1;
                    }
                }
            }
            prop_assert_eq!(pairs.len(), expected);
            Ok(())
        },
    );
}

#[test]
fn top_k_equals_sorted_oracle() {
    check(
        "top_k_equals_sorted_oracle",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), word(), gen::usize_in(0..6)),
        |(words, q, count)| {
            let ds = Dataset::from_records(words);
            let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
            let got = search_top_k(&engine, q, *count, 64);
            // Oracle: sort all records by (distance, id).
            let mut all: Vec<(u32, u32)> = ds.iter().map(|(id, r)| (levenshtein(q, r), id)).collect();
            all.sort_unstable();
            all.truncate(*count);
            let want: Vec<(u32, u32)> = all;
            let got: Vec<(u32, u32)> = got.iter().map(|m| (m.distance, m.id)).collect();
            prop_assert_eq!(got, want);
            Ok(())
        },
    );
}
