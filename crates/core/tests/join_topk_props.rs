//! Property tests for the similarity join and top-k search.

use proptest::prelude::*;
use simsearch_core::join::{index_join, nested_loop_join, parallel_sorted_join, sorted_join};
use simsearch_core::Strategy as ExecStrategy;
use simsearch_core::{search_top_k, EngineKind, SearchEngine, SeqVariant};
use simsearch_data::Dataset;
use simsearch_distance::levenshtein;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"abcN".to_vec()), 0..8)
}

fn corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(word(), 0..15)
}

proptest! {
    #[test]
    fn all_joins_agree_with_nested_loop(words in corpus(), k in 0u32..4) {
        let ds = Dataset::from_records(&words);
        let reference = nested_loop_join(&ds, k);
        prop_assert_eq!(sorted_join(&ds, k), reference.clone());
        prop_assert_eq!(index_join(&ds, k), reference.clone());
        prop_assert_eq!(
            parallel_sorted_join(&ds, k, ExecStrategy::WorkQueue { threads: 3 }),
            reference
        );
    }

    #[test]
    fn join_pairs_satisfy_the_threshold_exactly(words in corpus(), k in 0u32..4) {
        let ds = Dataset::from_records(&words);
        let pairs = sorted_join(&ds, k);
        // Every reported pair is within k with the right distance ...
        for p in &pairs {
            prop_assert!(p.left < p.right);
            prop_assert_eq!(p.distance, levenshtein(ds.get(p.left), ds.get(p.right)));
            prop_assert!(p.distance <= k);
        }
        // ... and no qualifying pair is missing.
        let n = ds.len() as u32;
        let mut expected = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if levenshtein(ds.get(i), ds.get(j)) <= k {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(pairs.len(), expected);
    }

    #[test]
    fn top_k_equals_sorted_oracle(words in corpus(), q in word(), count in 0usize..6) {
        let ds = Dataset::from_records(&words);
        let engine = SearchEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        let got = search_top_k(&engine, &q, count, 64);
        // Oracle: sort all records by (distance, id).
        let mut all: Vec<(u32, u32)> = ds
            .iter()
            .map(|(id, r)| (levenshtein(&q, r), id))
            .collect();
        all.sort_unstable();
        all.truncate(count);
        let want: Vec<(u32, u32)> = all;
        let got: Vec<(u32, u32)> = got.iter().map(|m| (m.distance, m.id)).collect();
        prop_assert_eq!(got, want);
    }
}
