//! The shard-equivalence oracle: sharding is a pure *layout* decision,
//! never a correctness one.
//!
//! On generated city and DNA datasets, a [`ShardedBackend`] — for every
//! shard count S ∈ {1, 2, 3, 8}, both partitioners, statically planned
//! and per-shard calibrated — returns byte-identical match sets to the
//! V1 oracle scan over 1,000-query workloads, under every executor ×
//! thread count {1, 4, 8}. Sharded top-k deepening likewise returns the
//! same k results in the same tie-break order as an unsharded backend,
//! including k larger than any single shard can answer alone. And the
//! accounting holds: every shard sees every query, and each shard's
//! per-arm decision counters sum to exactly the workload size.

use simsearch_core::{
    build_backend, Backend, EngineKind, SearchEngine, SeqVariant, ShardBy, ShardedBackend,
    Strategy,
};
use simsearch_data::{Alphabet, Dataset, CityGenerator, DnaGenerator, MatchSet, WorkloadSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const PARTITIONERS: [ShardBy; 2] = [ShardBy::Len, ShardBy::Hash];

fn presets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("city", CityGenerator::new(0xC17E_7E57).generate(400)),
        (
            "dna",
            DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250),
        ),
    ]
}

fn workload_for(dataset: &Dataset) -> simsearch_data::Workload {
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload =
        WorkloadSpec::new(&[1, 2, 3], 1_000, 0x0A07_0B0E).generate(dataset, &alphabet);
    assert_eq!(workload.len(), 1_000);
    workload
}

fn all_strategies() -> Vec<Strategy> {
    let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for threads in [1, 4, 8] {
        strategies.push(Strategy::FixedPool { threads });
        strategies.push(Strategy::WorkQueue { threads });
        strategies.push(Strategy::Adaptive { max_threads: threads });
    }
    strategies
}

#[test]
fn sharded_matches_the_v1_oracle_for_every_configuration() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        for shards in SHARD_COUNTS {
            for by in PARTITIONERS {
                // threads = 4 exercises the shard-level fan-out path for
                // S ≥ 4 and the sequential path below it.
                let backend = ShardedBackend::build(&dataset, shards, by, 4);
                backend.prepare();
                for strategy in all_strategies() {
                    assert_eq!(
                        backend.run_with_strategy(&workload, strategy),
                        baseline,
                        "{name}/S={shards}/{} under {}",
                        by.name(),
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn calibrated_sharded_matches_the_v1_oracle() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        for by in PARTITIONERS {
            let backend = ShardedBackend::calibrated(&dataset, 3, by, 1);
            backend.prepare();
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 4 },
                Strategy::WorkQueue { threads: 8 },
            ] {
                assert_eq!(
                    backend.run_with_strategy(&workload, strategy),
                    baseline,
                    "{name}/calibrated/{} under {}",
                    by.name(),
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn per_shard_decision_counters_sum_to_the_workload() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let shards = 3usize;
        let backend = ShardedBackend::build(&dataset, shards, ShardBy::Len, 1);
        let results = backend.run_workload(&workload);
        let expected_matches: u64 = results.iter().map(|m| m.len() as u64).sum();
        let stats = backend.shard_stats().expect("sharded backends report shard stats");
        assert_eq!(stats.len(), shards);
        for (i, s) in stats.iter().enumerate() {
            // Every query fans out to every shard...
            assert_eq!(s.queries, workload.len() as u64, "{name}/s{i} query count");
            // ...and each shard's per-arm routing counters account for
            // every one of those queries exactly once.
            let routed: u64 = s
                .plan_counts
                .as_ref()
                .expect("auto-planned shards expose decision counters")
                .iter()
                .map(|(_, c)| c)
                .sum();
            assert_eq!(routed, workload.len() as u64, "{name}/s{i} decisions");
        }
        // Shard match counters are disjoint tallies of the global total.
        let matches: u64 = stats.iter().map(|s| s.matches).sum();
        assert_eq!(matches, expected_matches, "{name}: per-shard match totals");
        // The aggregate view sums shard counters arm-by-arm.
        let aggregate: u64 = backend
            .plan_counts()
            .expect("sharded backends aggregate plan counters")
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(aggregate, (shards * workload.len()) as u64, "{name}: aggregate");
    }
}

#[test]
fn sharded_topk_matches_unsharded_for_every_k() {
    for (name, dataset) in presets() {
        let unsharded = build_backend(&dataset, EngineKind::Scan(SeqVariant::V4Flat));
        let workload = workload_for(&dataset);
        for shards in [3usize, 8] {
            for by in PARTITIONERS {
                let backend = ShardedBackend::build(&dataset, shards, by, 1);
                backend.prepare();
                for q in workload.queries.iter().take(40) {
                    for k in [1usize, 10, 100] {
                        // max_radius 16 makes k = 100 exceed what any
                        // single shard of the S = 8 split can contribute
                        // (≤ 50 records per shard) while the global
                        // answer still fills up — the cross-shard
                        // deepening must agree anyway.
                        let (want, _) = unsharded.search_top_k_with(&q.text, k, 16);
                        let (got, _) = backend.search_top_k_with(&q.text, k, 16);
                        assert_eq!(
                            got,
                            want,
                            "{name}/S={shards}/{} topk k={k} q={:?}",
                            by.name(),
                            String::from_utf8_lossy(&q.text)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn topk_k_exceeding_single_shard_capacity_is_exercised() {
    // Guard for the test above: with S = 8 over 400/250 records, at
    // least one query's global top-100 must draw from more rows than any
    // single shard holds matches for — otherwise the "k larger than a
    // shard" claim is vacuous.
    let (_, dataset) = presets().remove(0);
    let workload = workload_for(&dataset);
    let backend = ShardedBackend::build(&dataset, 8, ShardBy::Len, 1);
    let per_shard_cap = dataset.len().div_ceil(8);
    let mut exercised = false;
    for q in workload.queries.iter().take(40) {
        let (got, _) = backend.search_top_k_with(&q.text, 100, 16);
        if got.len() > per_shard_cap {
            exercised = true;
            break;
        }
    }
    assert!(
        exercised,
        "no sampled query produced more than {per_shard_cap} top-k results"
    );
}

#[test]
fn empty_and_oversharded_datasets_answer_like_the_oracle() {
    // S > |X|: five records, eight shards — some shards are empty and
    // the fan-out must still union correctly.
    let dataset = Dataset::from_records(["Berlin", "Bern", "", "Ulm", "Bonn"]);
    let oracle = build_backend(&dataset, EngineKind::Scan(SeqVariant::V1Base));
    for by in PARTITIONERS {
        let backend = ShardedBackend::build(&dataset, 8, by, 2);
        for q in ["Bern", "", "Urm"] {
            for k in 0..4 {
                assert_eq!(
                    backend.search(q.as_bytes(), k),
                    oracle.search(q.as_bytes(), k),
                    "{} q={q} k={k}",
                    by.name()
                );
            }
        }
    }
    // The degenerate empty dataset: every shard empty, every answer empty.
    let empty = Dataset::from_records(Vec::<&[u8]>::new());
    let backend = ShardedBackend::build(&empty, 3, ShardBy::Hash, 1);
    assert_eq!(backend.search(b"anything", 3), MatchSet::default());
}
