//! Deterministic compaction oracles: a compaction step is an *atomic*
//! re-layout — it may change where records live, never what queries see.
//!
//! Three layers:
//!
//! 1. **Flush** — a seeded fill past the memtable cap must move exactly
//!    the frozen prefix into a new segment, eliding tombstoned slots
//!    and dropping their tombstones in the same swap.
//! 2. **Tiered merge** — two same-tier segments collapse into one with
//!    their id tables interleaved in order; tombstoned segment records
//!    are elided and the double-delete answer stays `false` forever.
//! 3. **Atomicity under fire** — reader threads hammer queries while a
//!    compactor loops flush/merge steps and a writer churns the
//!    memtable: every observed result must equal the fixed expected
//!    answer (old layout and new layout agree — the churn records are
//!    constructed to never match), with no partial unions and no
//!    double-counted ids.

use simsearch_core::{Backend, LiveEngine, LsmConfig, MutableBackend, ShardBy, ShardedBackend};
use simsearch_data::Dataset;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn a_flush_moves_the_frozen_prefix_and_elides_memtable_tombstones() {
    let engine = LiveEngine::new(LsmConfig { memtable_cap: 4 });
    for w in [&b"aa"[..], b"ab", b"ac", b"ad"] {
        engine.insert(w);
    }
    assert!(engine.delete(1), "tombstone a memtable slot pre-flush");
    let before = engine.stats();
    assert_eq!((before.memtable_len, before.segments, before.tombstones), (4, 0, 1));

    assert!(engine.maybe_compact(), "cap reached: flush is due");

    let after = engine.stats();
    assert_eq!(after.memtable_len, 0, "the whole prefix moved");
    assert_eq!(after.segments, 1);
    assert_eq!(after.segment_records, 3, "the tombstoned slot was elided");
    assert_eq!(after.tombstones, 0, "its tombstone died with it");
    assert_eq!(after.live_records, 3);
    assert_eq!(after.compactions, 1);
    // The surviving ids answer from the segment now; the elided id is
    // gone and its id is never resurrected.
    assert_eq!(engine.search(b"aa", 1).ids(), vec![0, 2, 3]);
    assert!(!engine.delete(1), "elided ids stay deleted");
    assert_eq!(engine.insert(b"ae"), 4, "id allocation ignores elision");
}

#[test]
fn a_flush_leaves_records_inserted_during_the_build_in_the_memtable() {
    // maybe_compact freezes the memtable prefix it saw at plan time;
    // anything appended later must survive in the memtable. With the
    // single-threaded API the plan/swap windows coincide, so drive the
    // same invariant through the public seam: insert, flush, insert.
    let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
    engine.insert(b"one");
    engine.insert(b"two");
    assert!(engine.maybe_compact());
    let id = engine.insert(b"three");
    let stats = engine.stats();
    assert_eq!((stats.memtable_len, stats.segments), (1, 1));
    assert_eq!(engine.search(b"three", 1).ids(), vec![id]);
}

#[test]
fn a_tiered_merge_interleaves_id_tables_and_elides_segment_tombstones() {
    let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
    // Segment A holds ids {0, 1}; segment B holds ids {2, 3}. Same
    // length → same tier → merge candidates.
    engine.insert(b"xaa");
    engine.insert(b"xab");
    assert!(engine.maybe_compact(), "flush A");
    engine.insert(b"xba");
    engine.insert(b"xbb");
    assert!(engine.maybe_compact(), "flush B");
    assert_eq!(engine.stats().segments, 2);
    assert!(engine.delete(1), "tombstone inside segment A");

    assert!(engine.maybe_compact(), "same-tier merge is due");

    let stats = engine.stats();
    assert_eq!(stats.segments, 1, "two tiers collapsed into one segment");
    assert_eq!(stats.segment_records, 3, "the tombstoned record was elided");
    assert_eq!(stats.tombstones, 0);
    assert_eq!(stats.live_records, 3);
    // The merged segment answers with the union's ids, in id order
    // ("xbb" sits at distance 2, outside the k = 1 radius).
    assert_eq!(engine.search(b"xaa", 1).ids(), vec![0, 2]);
    assert!(!engine.delete(1), "double delete after elision stays false");
    // Merging is idempotent at quiescence: nothing further is due.
    assert!(!engine.maybe_compact(), "a single segment has no merge partner");
}

#[test]
fn compaction_to_quiescence_collapses_a_tower_of_tiers() {
    // 8 flushes of 2 records each: the tier-1 segments must cascade —
    // 2+2→4, 4+4→8, … — until no two segments share a tier.
    let engine = LiveEngine::new(LsmConfig { memtable_cap: 2 });
    for i in 0..16u32 {
        engine.insert(format!("rec{i:02}").as_bytes());
        if i % 2 == 1 {
            assert!(engine.maybe_compact(), "flush {}", i / 2);
        }
    }
    assert_eq!(engine.stats().segments, 8);
    let steps = engine.compact_to_quiescence();
    assert!(steps >= 4, "a tower of equal tiers cascades: {steps} steps");
    let stats = engine.stats();
    assert_eq!(stats.segments, 1, "16 = 2⁴ collapses into a single segment");
    assert_eq!(stats.segment_records, 16);
    assert_eq!(engine.search(b"rec07", 0).ids(), vec![7]);
}

/// The atomicity stress: queries racing a compactor and a writer must
/// only ever see complete snapshots.
///
/// Construction: a fixed corpus of short records is loaded and its
/// expected answers precomputed. A churn thread inserts/deletes *long*
/// records (far outside any query's radius, so they never change an
/// answer) while a compactor thread loops `maybe_compact`. Reader
/// threads assert every result equals the precomputed answer — a
/// partial union (segment missing mid-swap) would drop ids, a
/// double-install would duplicate them, and a torn tombstone set would
/// resurrect deleted records. `MatchSet::from_unsorted` debug-asserts
/// id uniqueness, so double-counting panics rather than passing.
#[test]
fn queries_racing_compaction_see_atomic_snapshots() {
    let engine = Arc::new(LiveEngine::new(LsmConfig { memtable_cap: 8 }));
    // The fixed visible corpus: ids 0..12, short city-like strings.
    let corpus: &[&[u8]] = &[
        b"Berlin", b"Bern", b"Bonn", b"Ulm", b"Berlingen", b"Bermen", b"Ulmen", b"B", b"Born",
        b"Bert", b"Ber", b"Urm",
    ];
    for w in corpus {
        engine.insert(w);
    }
    // Queries and their frozen expected answers (computed before any
    // concurrency starts; the churn below cannot change them).
    let probes: Vec<(&[u8], u32, Vec<u32>)> = [("Bern", 1u32), ("Ulm", 1), ("Ber", 2), ("", 1)]
        .iter()
        .map(|&(q, k)| (q.as_bytes(), k, engine.search(q.as_bytes(), k).ids()))
        .collect();
    for (q, k, expected) in &probes {
        assert!(!expected.is_empty(), "probe {:?} k={k} is non-vacuous", q);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Churn: long records (len 40 — no probe is within distance 2 of
    // them) cycle through insert → delete, forcing flushes that carry
    // tombstones and merges that elide them.
    {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let filler = [b'z'; 40];
            let mut live = std::collections::VecDeque::new();
            while !stop.load(Ordering::Relaxed) {
                live.push_back(engine.insert(&filler));
                if live.len() > 6 {
                    let id = live.pop_front().unwrap();
                    assert!(engine.delete(id), "churn ids are always live");
                }
            }
        }));
    }
    // Compactor: loops single steps so readers race every flush/merge
    // swap, not just one.
    {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                engine.maybe_compact();
                std::thread::yield_now();
            }
        }));
    }
    // Readers: every observed answer must be exactly the frozen one.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let probes = probes.clone();
        readers.push(std::thread::spawn(move || {
            let mut observations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (q, k, expected) in &probes {
                    let got = engine.search(q, *k);
                    assert_eq!(
                        &got.ids(),
                        expected,
                        "mid-compaction snapshot tore for {:?} k={k}",
                        String::from_utf8_lossy(q)
                    );
                    // Strictly increasing ids ⇒ no duplicates, no
                    // unsorted partial unions.
                    let ids = got.ids();
                    assert!(ids.windows(2).all(|w| w[0] < w[1]));
                    observations += 1;
                }
            }
            observations
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("churn/compactor thread");
    }
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    assert!(total > 0, "readers observed at least one snapshot");
    // The race actually exercised compaction: the engine moved records
    // through segments while the readers watched.
    let stats = engine.stats();
    assert!(stats.compactions > 0, "compaction ran during the race: {stats:?}");

    // After the dust settles the visible corpus is intact: drain the
    // remaining churn records and compare against a quiesced engine.
    engine.compact_to_quiescence();
    for (q, k, expected) in &probes {
        assert_eq!(&engine.search(q, *k).ids(), expected, "post-race {:?}", q);
    }
}

/// The sharded variant of the atomicity stress — and the proof that
/// compaction is per-shard: one dedicated compactor thread *per shard*
/// loops `compact_shard(i)`, so four compactors run flush/merge swaps
/// concurrently (a global compaction lock would serialise them; worse,
/// it would show up as readers stalling behind unrelated shards). The
/// reader assertion is the same: every cross-shard merged answer equals
/// the frozen expected answer, at every instant.
#[test]
fn sharded_queries_race_per_shard_compactors() {
    let engine = Arc::new(
        ShardedBackend::live(&Dataset::new(), 4, ShardBy::Hash, 1, LsmConfig { memtable_cap: 8 })
            .expect("valid sharded-live config"),
    );
    let corpus: &[&[u8]] = &[
        b"Berlin", b"Bern", b"Bonn", b"Ulm", b"Berlingen", b"Bermen", b"Ulmen", b"B", b"Born",
        b"Bert", b"Ber", b"Urm",
    ];
    for w in corpus {
        engine.insert(w);
    }
    // The hash router spread the corpus: at least two shards hold data
    // (12 records over 4 shards leave one empty only by freak seed —
    // assert the spread so the test really exercises the k-way merge).
    let populated = engine
        .live_shard_stats()
        .expect("live composite reports per-shard stats")
        .iter()
        .filter(|s| s.live_records > 0)
        .count();
    assert!(populated >= 2, "corpus spread over {populated} shards");

    let probes: Vec<(&[u8], u32, Vec<u32>)> = [("Bern", 1u32), ("Ulm", 1), ("Ber", 2), ("", 1)]
        .iter()
        .map(|&(q, k)| (q.as_bytes(), k, engine.search(q.as_bytes(), k).ids()))
        .collect();
    for (q, k, expected) in &probes {
        assert!(!expected.is_empty(), "probe {:?} k={k} is non-vacuous", q);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Churn: long records cycle insert → delete across all shards,
    // feeding every shard's memtable so every compactor has work.
    {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut filler = [b'z'; 40];
            let mut live = std::collections::VecDeque::new();
            let mut round = 0u8;
            while !stop.load(Ordering::Relaxed) {
                // Vary a byte so the hash router cycles the target shard.
                filler[0] = b'a' + (round % 26);
                round = round.wrapping_add(1);
                live.push_back(engine.insert(&filler));
                if live.len() > 12 {
                    let id = live.pop_front().unwrap();
                    assert!(engine.delete(id), "churn ids are always live");
                }
            }
        }));
    }
    // One compactor per shard: concurrent flush/merge swaps on disjoint
    // shards, no global lock to serialise them.
    for shard in 0..4 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                engine.compact_shard(shard);
                std::thread::yield_now();
            }
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let probes = probes.clone();
        readers.push(std::thread::spawn(move || {
            let mut observations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (q, k, expected) in &probes {
                    let got = engine.search(q, *k);
                    assert_eq!(
                        &got.ids(),
                        expected,
                        "mid-compaction sharded snapshot tore for {:?} k={k}",
                        String::from_utf8_lossy(q)
                    );
                    let ids = got.ids();
                    assert!(ids.windows(2).all(|w| w[0] < w[1]));
                    observations += 1;
                }
            }
            observations
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("churn/compactor thread");
    }
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    assert!(total > 0, "readers observed at least one snapshot");
    let stats = engine.live_stats();
    assert!(stats.compactions > 0, "compaction ran during the race: {stats:?}");

    engine.compact_to_quiescence();
    for (q, k, expected) in &probes {
        assert_eq!(&engine.search(q, *k).ids(), expected, "post-race {:?}", q);
    }
    // Per-shard gauges stay coherent after the race: sums equal the
    // aggregate the composite reports.
    let per_shard = engine.live_shard_stats().expect("per-shard stats");
    let agg = engine.live_stats();
    assert_eq!(per_shard.iter().map(|s| s.live_records).sum::<usize>(), agg.live_records);
    assert_eq!(per_shard.iter().map(|s| s.compactions).sum::<u64>(), agg.compactions);
}
