//! Cross-crate integration: every engine family returns identical result
//! sets on both paper workload profiles — the repository-wide version of
//! the paper's correctness methodology.

use simsearch::core::presets;
use simsearch::core::{
    cross_validate, EngineKind, IdxVariant, KernelKind, SearchEngine, SeqVariant, Strategy,
};

fn all_engine_kinds() -> Vec<EngineKind> {
    let mut kinds = Vec::new();
    for v in SeqVariant::ladder_extended(3) {
        kinds.push(EngineKind::Scan(v));
    }
    for kernel in KernelKind::ALL {
        kinds.push(EngineKind::ScanCustom {
            kernel,
            strategy: Strategy::WorkQueue { threads: 2 },
        });
    }
    for v in IdxVariant::ladder(3) {
        kinds.push(EngineKind::Index(v));
        kinds.push(EngineKind::IndexModern(v));
    }
    kinds.push(EngineKind::RadixFreq {
        strategy: Strategy::Sequential,
    });
    kinds.push(EngineKind::Qgram {
        q: 2,
        strategy: Strategy::Sequential,
    });
    kinds.push(EngineKind::Qgram {
        q: 3,
        strategy: Strategy::Adaptive { max_threads: 2 },
    });
    kinds.push(EngineKind::Buckets {
        strategy: Strategy::FixedPool { threads: 2 },
    });
    kinds.push(EngineKind::Suffix {
        strategy: Strategy::Sequential,
    });
    kinds.push(EngineKind::Bk {
        strategy: Strategy::Sequential,
    });
    kinds
}

#[test]
fn every_engine_agrees_on_the_city_profile() {
    let preset = presets::city(600);
    let workload = preset.workload.prefix(40);
    let reference = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V1Base));
    let engines: Vec<SearchEngine> = all_engine_kinds()
        .into_iter()
        .map(|k| SearchEngine::build(&preset.dataset, k))
        .collect();
    cross_validate(&reference, &engines, &workload)
        .unwrap_or_else(|m| panic!("city profile: {m}"));
}

#[test]
fn every_engine_agrees_on_the_dna_profile() {
    let preset = presets::dna(250);
    let workload = preset.workload.prefix(24);
    let reference = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V1Base));
    let engines: Vec<SearchEngine> = all_engine_kinds()
        .into_iter()
        .map(|k| SearchEngine::build(&preset.dataset, k))
        .collect();
    cross_validate(&reference, &engines, &workload)
        .unwrap_or_else(|m| panic!("dna profile: {m}"));
}

#[test]
fn matches_report_true_distances() {
    // Every reported distance must equal the oracle distance, and every
    // reported match must satisfy the threshold.
    let preset = presets::city(300);
    let engine = SearchEngine::build(&preset.dataset, EngineKind::Index(IdxVariant::I2Compressed));
    for q in preset.workload.prefix(30).iter() {
        for m in engine.search(&q.text, q.threshold).iter() {
            let truth = simsearch::distance::levenshtein(&q.text, preset.dataset.get(m.id));
            assert_eq!(m.distance, truth);
            assert!(m.distance <= q.threshold);
        }
    }
}

#[test]
fn zero_threshold_finds_the_perturbation_source() {
    // Queries generated with 0 edits must find their source record.
    let preset = presets::dna(200);
    let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let mut exact_hits = 0;
    for q in preset.workload.iter().filter(|q| q.threshold == 0).take(20) {
        let res = engine.search(&q.text, 0);
        assert!(!res.is_empty(), "k=0 query lost its source record");
        exact_hits += res.len();
    }
    assert!(exact_hits >= 20);
}
