//! The partition-join oracle gate: PASS-JOIN and MinJoin return the
//! nested-loop join's pair list everywhere they can be reached.
//!
//! Three layers:
//!
//! 1. **Property level** — randomized small corpora over both alphabet
//!    families (city-like letters, DNA), shrunk on failure, with the
//!    parallel entry points in the loop.
//! 2. **Executor level** — fixed city and DNA presets, k ∈ {0, 1, 2, 4},
//!    under every executor × thread count {1, 4, 8}.
//! 3. **Degenerate level** — the empty set, a singleton, an
//!    all-identical corpus, and k at or beyond the longest record.

use simsearch_core::join::nested_loop_join;
use simsearch_core::{
    min_join, parallel_min_join, parallel_pass_join, pass_join, Strategy,
};
use simsearch_data::{CityGenerator, Dataset, DnaGenerator};
use simsearch_testkit::{check, gen, prop_assert_eq, Config, Gen};

const SEED: u64 = 0x9A55_2013;

fn corpus(alphabet: &'static [u8]) -> Gen<Vec<Vec<u8>>> {
    gen::vec_of(gen::bytes_from(alphabet, 0..10), 0..12)
}

fn presets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("city", CityGenerator::new(0xC17E_7E57).generate(400)),
        (
            "dna",
            DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250),
        ),
    ]
}

fn all_strategies() -> Vec<Strategy> {
    let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for threads in [1, 4, 8] {
        strategies.push(Strategy::FixedPool { threads });
        strategies.push(Strategy::WorkQueue { threads });
        strategies.push(Strategy::Adaptive { max_threads: threads });
    }
    strategies
}

#[test]
fn partition_joins_match_nested_loop_on_random_corpora() {
    for (name, alphabet) in [("letters", b"abcN".as_slice()), ("dna", b"ACGT".as_slice())] {
        check(
            &format!("partition_joins_match_nested_loop_{name}"),
            Config::default().seed(SEED),
            &gen::zip(corpus(alphabet), gen::u32_in(0..5)),
            |(words, k)| {
                let ds = Dataset::from_records(words);
                let reference = nested_loop_join(&ds, *k);
                prop_assert_eq!(pass_join(&ds, *k), reference.clone());
                prop_assert_eq!(min_join(&ds, *k), reference.clone());
                prop_assert_eq!(
                    parallel_pass_join(&ds, *k, Strategy::WorkQueue { threads: 3 }),
                    reference.clone()
                );
                prop_assert_eq!(
                    parallel_min_join(&ds, *k, Strategy::WorkQueue { threads: 3 }),
                    reference
                );
                Ok(())
            },
        );
    }
}

#[test]
fn partition_joins_match_nested_loop_under_every_executor() {
    for (name, dataset) in presets() {
        for k in [0, 1, 2, 4] {
            let reference = nested_loop_join(&dataset, k);
            for strategy in all_strategies() {
                assert_eq!(
                    parallel_pass_join(&dataset, k, strategy),
                    reference,
                    "{name} PASS-JOIN k={k} under {}",
                    strategy.name()
                );
                assert_eq!(
                    parallel_min_join(&dataset, k, strategy),
                    reference,
                    "{name} MinJoin k={k} under {}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn degenerate_inputs_match_the_oracle() {
    let empty = Dataset::from_records(Vec::<Vec<u8>>::new());
    let singleton = Dataset::from_records(["Berlin"]);
    let identical = Dataset::from_records(vec!["Ulm"; 20]);
    let tiny = Dataset::from_records(["Bern", "Bonn", "a", ""]);
    for (name, ds) in [
        ("empty", &empty),
        ("singleton", &singleton),
        ("identical", &identical),
        ("tiny", &tiny),
    ] {
        // k = 9 exceeds every record length, so the join degenerates to
        // "all pairs" — the filters must not over-prune their way there.
        for k in [0, 1, 9] {
            let reference = nested_loop_join(ds, k);
            assert_eq!(pass_join(ds, k), reference, "{name} PASS-JOIN k={k}");
            assert_eq!(min_join(ds, k), reference, "{name} MinJoin k={k}");
        }
    }
    assert_eq!(
        nested_loop_join(&identical, 0).len(),
        20 * 19 / 2,
        "the identical corpus really is the all-pairs case"
    );
}
