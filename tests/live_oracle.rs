//! The live-ingest oracle: mutability is an *implementation* decision,
//! never a correctness one.
//!
//! After any interleaving of INSERT / DELETE / QUERY / TOPK / COMPACT,
//! a [`LiveEngine`] must answer exactly like a fresh V1 flat scan
//! rebuilt from the surviving records — the simplest engine this
//! repository trusts, over the simplest possible state. Two layers:
//!
//! 1. **Property level** — random interleavings (collision-rich city
//!    strings, tiny memtable caps so flushes and merges fire
//!    constantly, deletes aimed at live, dead, and absent ids) replay
//!    against both the engine and a model; every QUERY/TOPK must agree
//!    with the V1 rebuild, byte for byte. Failures shrink to a minimal
//!    interleaving via the testkit's greedy shrinker.
//! 2. **Executor level** — after a deterministic churn (seed load,
//!    inserts, deletes, interleaved compaction), a 1,000-query workload
//!    must return identical match sets under every executor × thread
//!    count {1, 4, 8}, matching the V1 rebuild remapped through the
//!    surviving-id table.

use simsearch_core::{
    build_backend, Backend, EngineKind, LiveEngine, LiveStats, LsmConfig, MutableBackend,
    SeqVariant, ShardBy, ShardedBackend, Strategy,
};
use simsearch_data::{Alphabet, CityGenerator, Dataset, Match, MatchSet, WorkloadSpec};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen, Shrink};

const SEED: u64 = 0x0006_11FE;

/// One step of a live-ingest interleaving. `Delete` carries a raw
/// draw resolved against the id space at replay time (`raw % (next+1)`)
/// so shrinking an id keeps the op meaningful instead of drifting to
/// always-absent targets.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Insert(Vec<u8>),
    Delete(u32),
    Query(Vec<u8>, u32),
    TopK(Vec<u8>, u32),
    Compact,
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        match self {
            Op::Insert(text) => text.shrink().into_iter().map(Op::Insert).collect(),
            Op::Delete(raw) => raw.shrink().into_iter().map(Op::Delete).collect(),
            Op::Query(text, k) => (text.clone(), *k)
                .shrink()
                .into_iter()
                .map(|(t, k)| Op::Query(t, k))
                .collect(),
            Op::TopK(text, k) => (text.clone(), *k)
                .shrink()
                .into_iter()
                .map(|(t, k)| Op::TopK(t, k))
                .collect(),
            Op::Compact => Vec::new(),
        }
    }
}

fn op_gen() -> Gen<Op> {
    let text = || gen::city_string(0..8);
    let k = || gen::u32_in(0..4);
    gen::weighted(vec![
        (4, text().map(Op::Insert)),
        (2, gen::u32_in(0..64).map(Op::Delete)),
        (3, gen::zip(text(), k()).map(|(t, k)| Op::Query(t, k))),
        (2, gen::zip(text(), k()).map(|(t, k)| Op::TopK(t, k))),
        (1, gen::constant(Op::Compact)),
    ])
}

/// The oracle: a fresh V1 flat-scan engine over the survivors, local
/// ids mapped back through the (strictly increasing) survivor table.
fn v1_rebuild(survivors: &[(u32, Vec<u8>)]) -> (Box<dyn Backend + 'static>, Vec<u32>) {
    let data: Dataset = survivors.iter().map(|(_, r)| r.as_slice()).collect();
    let globals: Vec<u32> = survivors.iter().map(|(id, _)| *id).collect();
    // `build_backend` borrows the dataset; the V1 scan clones what it
    // needs, but keep ownership simple by leaking nothing: rebuild per
    // call sites below are all short-lived.
    let backend = build_backend_owned(data);
    (backend, globals)
}

/// A V1 backend that owns its dataset (the borrowed `build_backend`
/// tied to a stack-local `Dataset` can't escape the function).
fn build_backend_owned(data: Dataset) -> Box<dyn Backend + 'static> {
    struct Owned {
        data: Dataset,
    }
    impl Backend for Owned {
        fn name(&self) -> String {
            "v1-rebuild".into()
        }
        fn search(&self, query: &[u8], k: u32) -> MatchSet {
            build_backend(&self.data, EngineKind::Scan(SeqVariant::V1Base)).search(query, k)
        }
        fn search_counting(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
            build_backend(&self.data, EngineKind::Scan(SeqVariant::V1Base))
                .search_counting(query, k)
        }
        fn cost_hint(
            &self,
            snapshot: &simsearch_data::StatsSnapshot,
            query_len: usize,
            k: u32,
        ) -> f64 {
            build_backend(&self.data, EngineKind::Scan(SeqVariant::V1Base))
                .cost_hint(snapshot, query_len, k)
        }
        fn diag(&self) -> simsearch_core::BackendDiag {
            build_backend(&self.data, EngineKind::Scan(SeqVariant::V1Base)).diag()
        }
    }
    Box::new(Owned { data })
}

fn remap(local: &MatchSet, globals: &[u32]) -> MatchSet {
    MatchSet::from_unsorted(
        local
            .iter()
            .map(|m| Match::new(globals[m.id as usize], m.distance))
            .collect(),
    )
}

/// A constructor for one mutable engine arrangement: seeds a backend
/// from a dataset (possibly empty) and a memtable cap.
type MutableFactory = Box<dyn Fn(&Dataset, usize) -> Box<dyn MutableBackend>>;

/// The live engines under test: the unsharded LSM engine plus every
/// shard count the sharded composite is expected to serve.
fn mutable_configs() -> Vec<(String, MutableFactory)> {
    let mut configs: Vec<(String, MutableFactory)> =
        vec![(
            "live".into(),
            Box::new(|data, cap| {
                Box::new(LiveEngine::from_dataset(data, LsmConfig { memtable_cap: cap }))
            }),
        )];
    for (shards, by) in [
        (1, ShardBy::Len),
        (1, ShardBy::Hash),
        (2, ShardBy::Hash),
        (4, ShardBy::Hash),
    ] {
        configs.push((
            format!("sharded-live s={shards}/{by:?}"),
            Box::new(move |data, cap| {
                Box::new(
                    ShardedBackend::live(data, shards, by, 1, LsmConfig { memtable_cap: cap })
                        .expect("valid sharded-live config"),
                )
            }),
        ));
    }
    configs
}

/// Replays one interleaving against the engine and the model, checking
/// every read against the V1 rebuild. Returns an error (for shrinking)
/// on the first divergence.
fn replay_on(engine: &dyn MutableBackend, memtable_cap: usize, ops: &[Op]) -> Result<(), String> {
    let mut survivors: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut next_id = 0u32;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(text) => {
                let id = engine.insert(text);
                prop_assert_eq!(id, next_id, "step {step}: ids are dense and monotone");
                survivors.push((id, text.clone()));
                next_id += 1;
            }
            Op::Delete(raw) => {
                // `% (next_id + 1)` covers live ids, already-deleted
                // ids, and the one guaranteed-absent id `next_id`.
                let target = raw % (next_id + 1);
                let position = survivors.iter().position(|(id, _)| *id == target);
                let existed = engine.delete(target);
                prop_assert_eq!(
                    existed,
                    position.is_some(),
                    "step {step}: delete {target} live-ness"
                );
                if let Some(position) = position {
                    survivors.remove(position);
                }
            }
            Op::Query(text, k) => {
                let (oracle, globals) = v1_rebuild(&survivors);
                prop_assert_eq!(
                    engine.search(text, *k),
                    remap(&oracle.search(text, *k), &globals),
                    "step {step}: QUERY {:?} k={k} against {} survivors",
                    String::from_utf8_lossy(text),
                    survivors.len()
                );
            }
            Op::TopK(text, k) => {
                let (oracle, globals) = v1_rebuild(&survivors);
                let (want_local, _) = oracle.search_top_k_with(text, *k as usize, 16);
                let want: Vec<Match> = want_local
                    .iter()
                    .map(|m| Match::new(globals[m.id as usize], m.distance))
                    .collect();
                let (got, _) = engine.search_top_k_with(text, *k as usize, 16);
                prop_assert_eq!(
                    got,
                    want,
                    "step {step}: TOPK {:?} k={k}",
                    String::from_utf8_lossy(text)
                );
            }
            Op::Compact => {
                engine.maybe_compact();
            }
        }
        // The engine's own accounting must track the model at every step.
        prop_assert_eq!(
            engine.live_stats().live_records,
            survivors.len(),
            "step {step}: live count"
        );
    }
    // Drain all pending compactions and re-check: elision must not
    // change any answer.
    engine.compact_to_quiescence();
    let stats = engine.live_stats();
    // Quiescence does NOT imply zero tombstones: a below-cap memtable
    // or a segment with no same-tier merge partner keeps its deletes
    // masked rather than elided. What must hold is the live count.
    prop_assert_eq!(stats.live_records, survivors.len());
    // Per-shard accounting: each shard's memtable independently sits
    // below cap, and the per-shard stats sum field-wise to the
    // aggregate the composite reports.
    match engine.live_shard_stats() {
        Some(per_shard) => {
            let mut sum = LiveStats::default();
            for (i, shard) in per_shard.iter().enumerate() {
                prop_assert!(
                    shard.memtable_len < memtable_cap.max(1),
                    "shard {i}: quiescent memtable below cap: {} >= {memtable_cap}",
                    shard.memtable_len
                );
                sum.accumulate(shard);
            }
            prop_assert_eq!(sum, stats, "per-shard stats sum to the aggregate");
        }
        None => prop_assert!(
            stats.memtable_len < memtable_cap.max(1),
            "quiescent memtable below cap: {} >= {memtable_cap}",
            stats.memtable_len
        ),
    }
    let (oracle, globals) = v1_rebuild(&survivors);
    for q in [&b""[..], b"ab", b"abcd"] {
        prop_assert_eq!(
            engine.search(q, 2),
            remap(&oracle.search(q, 2), &globals),
            "post-quiescence QUERY {:?}",
            String::from_utf8_lossy(q)
        );
    }
    Ok(())
}

#[test]
fn any_interleaving_matches_the_v1_rebuild() {
    // Tiny caps make flush/merge fire every few ops; the cap rides in
    // the generated value so a failure pins it alongside the ops.
    let cases = gen::zip(gen::usize_in(1..6), gen::vec_of(op_gen(), 0..40));
    check(
        "any_interleaving_matches_the_v1_rebuild",
        Config::cases(150).seed(SEED),
        &cases,
        |(cap, ops)| {
            let engine = LiveEngine::new(LsmConfig { memtable_cap: *cap });
            replay_on(&engine, *cap, ops)
        },
    );
}

#[test]
fn sharded_interleavings_match_the_v1_rebuild() {
    // The same oracle, against every shard arrangement the composite
    // serves: mutations route through the hash router, reads fan out
    // and k-way merge, yet nothing is distinguishable from one flat V1
    // scan over the survivors.
    let cases = gen::zip(gen::usize_in(1..6), gen::vec_of(op_gen(), 0..40));
    for (label, make) in mutable_configs() {
        check(
            &format!("sharded_interleavings[{label}]"),
            Config::cases(50).seed(SEED ^ label.len() as u64),
            &cases,
            |(cap, ops)| {
                let engine = make(&Dataset::new(), *cap);
                replay_on(engine.as_ref(), *cap, ops)
            },
        );
    }
}

#[test]
fn the_degenerate_interleavings_hold() {
    // The edges the generator may under-sample: empty op list, empty
    // record, k = 0, delete into an empty engine, compact on empty —
    // for every mutable engine arrangement.
    for (label, make) in mutable_configs() {
        let run = |cap: usize, ops: &[Op]| {
            replay_on(make(&Dataset::new(), cap).as_ref(), cap, ops)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
        };
        run(1, &[]);
        run(1, &[Op::Compact, Op::Delete(0), Op::Query(Vec::new(), 0)]);
        run(
            2,
            &[
                Op::Insert(Vec::new()),
                Op::Query(Vec::new(), 0),
                Op::Compact,
                Op::Delete(0),
                Op::Query(Vec::new(), 1),
                Op::TopK(b"a".to_vec(), 3),
            ],
        );
    }
}

#[test]
fn a_len_partitioned_live_composite_is_refused() {
    // Length bands shift as the dataset grows, so a len partitioner can
    // never route an insert: construction must fail, and the message
    // must name the fix.
    for shards in [2, 4] {
        let err = match ShardedBackend::live(
            &Dataset::new(),
            shards,
            ShardBy::Len,
            1,
            LsmConfig { memtable_cap: 8 },
        ) {
            Err(err) => err,
            Ok(_) => panic!("len partitioning with {shards} live shards must be rejected"),
        };
        assert!(err.contains("--shard-by hash"), "actionable message, got: {err}");
    }
}

/// Deterministic churn for the executor matrix: seed 300 city records,
/// insert 120 more, delete every seventh id, compacting every 16 steps.
/// Returns the engine plus the surviving `(global id, record)` table.
type ChurnedEngine = (Box<dyn MutableBackend>, Vec<(u32, Vec<u8>)>);

fn churned_engine(make: &dyn Fn(&Dataset, usize) -> Box<dyn MutableBackend>) -> ChurnedEngine {
    let seed_data = CityGenerator::new(0xC17E_7E57).generate(300);
    let extra = CityGenerator::new(0x11FE_5EED).generate(120);
    let engine = make(&seed_data, 16);
    let mut survivors: Vec<(u32, Vec<u8>)> = seed_data
        .iter()
        .map(|(id, r)| (id, r.to_vec()))
        .collect();
    for (step, (_, record)) in extra.iter().enumerate() {
        let id = engine.insert(record);
        survivors.push((id, record.to_vec()));
        if step % 7 == 3 {
            let victim = survivors[(step * 13) % survivors.len()].0;
            assert!(engine.delete(victim));
            survivors.retain(|(id, _)| *id != victim);
        }
        if step % 16 == 15 {
            engine.maybe_compact();
        }
    }
    let stats = engine.live_stats();
    assert!(stats.segments > 1, "churn produced a multi-segment engine");
    assert!(stats.memtable_len > 0, "churn left a live memtable");
    assert!(stats.tombstones > 0, "churn left unelided tombstones");
    (engine, survivors)
}

#[test]
fn every_executor_agrees_on_a_churned_engine() {
    for (label, make) in mutable_configs() {
        let (engine, survivors) = churned_engine(make.as_ref());
        let data: Dataset = survivors.iter().map(|(_, r)| r.as_slice()).collect();
        let globals: Vec<u32> = survivors.iter().map(|(id, _)| *id).collect();
        let alphabet = Alphabet::from_corpus(data.records());
        let workload = WorkloadSpec::new(&[1, 2, 3], 1_000, 0x0A07_0B0E).generate(&data, &alphabet);
        let oracle = build_backend(&data, EngineKind::Scan(SeqVariant::V1Base));
        let baseline: Vec<MatchSet> = oracle
            .run_workload(&workload)
            .into_iter()
            .map(|m| remap(&m, &globals))
            .collect();

        let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
        for threads in [1, 4, 8] {
            strategies.push(Strategy::FixedPool { threads });
            strategies.push(Strategy::WorkQueue { threads });
            strategies.push(Strategy::Adaptive { max_threads: threads });
        }
        for strategy in strategies {
            assert_eq!(
                engine.run_with_strategy(&workload, strategy),
                baseline,
                "{label} under {}",
                strategy.name()
            );
        }
    }
}

#[test]
fn the_registered_live_kind_builds_the_same_engine() {
    // `EngineKind::Live` must route through the same LSM machinery as a
    // hand-built engine: identical answers, a live-flavored diag.
    let data = CityGenerator::new(0xC17E_7E57).generate(100);
    let registered = build_backend(&data, EngineKind::Live { memtable_cap: 8 });
    let direct = LiveEngine::from_dataset(&data, LsmConfig { memtable_cap: 8 });
    assert_eq!(registered.name(), direct.name());
    for q in [&b"abc"[..], b"", b"dAB -"] {
        for k in 0..3 {
            assert_eq!(registered.search(q, k), direct.search(q, k));
        }
    }
    let diag = registered.diag();
    assert!(diag.filters.contains(&"tombstone"), "diag: {diag:?}");
}

#[test]
fn the_registered_sharded_live_kind_builds_the_same_engine() {
    // `EngineKind::ShardedLive` must route through `ShardedBackend::live`
    // exactly: identical answers and an identical composite name.
    let data = CityGenerator::new(0xC17E_7E57).generate(100);
    let registered = build_backend(
        &data,
        EngineKind::ShardedLive {
            shards: 4,
            by: ShardBy::Hash,
            threads: 2,
            memtable_cap: 8,
        },
    );
    let direct = ShardedBackend::live(&data, 4, ShardBy::Hash, 2, LsmConfig { memtable_cap: 8 })
        .expect("valid config");
    assert_eq!(registered.name(), Backend::name(&direct));
    for q in [&b"abc"[..], b"", b"dAB -"] {
        for k in 0..3 {
            assert_eq!(registered.search(q, k), direct.search(q, k));
        }
    }
}
