//! The replanning oracle: self-tuning is a pure *performance* loop —
//! live recalibration must never change an answer, and it must keep
//! adapting as the query distribution shifts.
//!
//! Two layers:
//!
//! 1. **Distribution shift** — one engine serves a workload whose class
//!    mix flips mid-run (short city strings, then long DNA-like reads).
//!    Each phase ends with a replan tick; the tick must be *accepted*
//!    (the observation grid converged: `plan_epoch` advances), the
//!    per-arm routing counters must account for every routed query, and
//!    the replanned table must stay byte-identical to the V1 oracle
//!    under every executor × thread count {1, 4, 8}.
//! 2. **Restart** — a served daemon persists its calibration at
//!    shutdown; a restarted daemon over the same dataset boots with
//!    `plan_epoch > 0` (yesterday's table restored), while a daemon over
//!    *different* data silently falls back to the static table.

use std::time::{Duration, Instant};

use simsearch_core::{
    AutoBackend, Backend, EngineKind, SeqVariant, Strategy, MIN_CELL_OBSERVATIONS,
};
use simsearch_data::{Alphabet, CityGenerator, Dataset, DnaGenerator, Workload, WorkloadSpec};

fn all_strategies() -> Vec<Strategy> {
    let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for threads in [1, 4, 8] {
        strategies.push(Strategy::FixedPool { threads });
        strategies.push(Strategy::WorkQueue { threads });
        strategies.push(Strategy::Adaptive { max_threads: threads });
    }
    strategies
}

/// One corpus holding both phases' records: short city names and long
/// DNA-like reads, so both length classes are populated and the planner
/// has something to converge *to* in each phase.
fn shifted_corpus() -> (Dataset, Workload, Workload) {
    let city = CityGenerator::new(0xC17E_7E57).generate(300);
    let dna = DnaGenerator::new(0xD7A_7E57).genome_len(3_000).generate(150);
    let mut records = city.to_owned_records();
    records.extend(dna.to_owned_records());
    let combined = Dataset::from_records(&records);
    let city_phase =
        WorkloadSpec::new(&[1, 2], 400, 0x0A07_0B0E).generate(&city, &Alphabet::from_corpus(city.records()));
    let dna_phase =
        WorkloadSpec::new(&[2, 3], 200, 0x0B0E_0A07).generate(&dna, &Alphabet::from_corpus(dna.records()));
    (combined, city_phase, dna_phase)
}

#[test]
fn replanning_converges_across_a_distribution_shift() {
    let (dataset, city_phase, dna_phase) = shifted_corpus();
    let auto = AutoBackend::calibrated(&dataset, 1, &city_phase.prefix(16));
    assert_eq!(auto.plan_epoch(), 0, "build-time calibration is epoch 0");

    // Phase 1: short-string traffic. The grid fills with short-class
    // observations; the phase-end tick must accept the swap.
    for q in &city_phase.queries {
        let _ = auto.search_counting(&q.text, q.threshold);
    }
    assert!(
        auto.replan(),
        "after {} short queries the grid has converged",
        city_phase.len()
    );
    assert_eq!(auto.plan_epoch(), 1);
    let routed_phase1: u64 = auto.plan_counts().iter().map(|(_, c)| c).sum();
    assert_eq!(
        routed_phase1,
        city_phase.len() as u64,
        "every phase-1 query routed exactly once"
    );

    // Phase 2: the distribution shifts to long reads — no restart. The
    // next tick re-derives the table with the long classes observed.
    for q in &dna_phase.queries {
        let _ = auto.search_counting(&q.text, q.threshold);
    }
    assert!(auto.replan(), "the shifted grid still converges");
    assert_eq!(auto.plan_epoch(), 2, "one accepted swap per phase");
    let routed_total: u64 = auto.plan_counts().iter().map(|(_, c)| c).sum();
    assert_eq!(routed_total, (city_phase.len() + dna_phase.len()) as u64);
    assert!(
        auto.planner().is_calibrated(),
        "the live table carries measured multipliers"
    );
    assert!(
        auto.observed_arm_nanos().iter().any(|(_, n)| *n > 0),
        "the grid observed real latencies"
    );

    // Parity arm: the twice-replanned engine answers byte-identically
    // to the V1 oracle for *both* phases, under every executor.
    let mut full = Workload { queries: city_phase.queries.clone() };
    full.queries.extend(dna_phase.queries.iter().cloned());
    let oracle = simsearch_core::SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
    let baseline = oracle.run(&full);
    for strategy in all_strategies() {
        assert_eq!(
            auto.run_with_strategy(&full, strategy),
            baseline,
            "replanned auto under {}",
            strategy.name()
        );
    }
}

mod served {
    use super::*;
    use simsearch_serve::ServerConfig;
    use simsearch_testkit::loopback::Loopback;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("simsearch-replan-{}-{name}", std::process::id()))
    }

    /// A served daemon replans live, persists calibration at shutdown,
    /// and a restarted daemon over the same dataset boots with
    /// `plan_epoch > 0` — while a mismatched dataset falls back cleanly.
    #[test]
    fn restarted_daemon_loads_persisted_calibration() {
        let dataset = CityGenerator::new(0x5E12_7A27).generate(250);
        let path = tmp("calib");
        let _ = std::fs::remove_file(&path);
        let config = || ServerConfig {
            replan_interval: Some(Duration::from_millis(20)),
            calibration_path: Some(path.clone()),
            ..ServerConfig::default()
        };

        // First life: enough identical traffic to converge one grid
        // cell, then wait for the background tick to accept a swap.
        {
            let server = Loopback::spawn(
                dataset.clone(),
                EngineKind::Auto { threads: 1 },
                config(),
            );
            let mut client = server.client();
            for _ in 0..MIN_CELL_OBSERVATIONS * 4 {
                client.query(b"Berlin", 2).expect("query");
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while server.metrics().replans.get() == 0 {
                assert!(
                    Instant::now() < deadline,
                    "replan tick never accepted a swap"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(server.metrics().plan_epoch.get() > 0);
            server.shutdown(); // persists the calibrated table
        }
        assert!(path.exists(), "shutdown saved the calibration dump");

        // Second life: same dataset, same file — the static table is
        // replaced before the first request, so STATS shows a restore.
        {
            let server = Loopback::spawn(
                dataset.clone(),
                EngineKind::Auto { threads: 1 },
                config(),
            );
            // The install runs in the server thread before it answers
            // requests; a connected client proves startup finished.
            let mut client = server.client();
            assert!(client.health().expect("health"));
            assert!(
                server.metrics().plan_epoch.get() > 0,
                "restored calibration counts as a swap at startup"
            );
            assert!(server.metrics().replans.get() >= 1);
            let json = client.stats_json().expect("stats");
            assert!(json.contains("\"replans\": "), "{json}");
            assert!(!json.contains("\"plan_epoch\": 0"), "{json}");
            server.shutdown();
        }

        // A daemon serving different data refuses the stale file and
        // keeps serving on the static table — fallback, not an error.
        {
            let other = DnaGenerator::new(0xD7A_0001).genome_len(800).generate(60);
            let server = Loopback::spawn(other, EngineKind::Auto { threads: 1 }, config());
            assert_eq!(
                server.metrics().plan_epoch.get(),
                0,
                "snapshot mismatch falls back to the static table"
            );
            let mut client = server.client();
            assert!(client.health().expect("health"), "fallback still serves");
            server.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }
}
