//! The planner-parity oracle: `--backend auto` is a pure *performance*
//! decision, never a correctness one.
//!
//! Three layers:
//!
//! 1. **Workload level** — on generated city and DNA datasets, the
//!    planner-driven auto engine (static *and* calibrated) returns
//!    byte-identical match sets to the V1 oracle scan over 1,000-query
//!    workloads, under every executor × thread count {1, 4, 8}.
//! 2. **Accounting level** — the per-backend `plan_decisions` counters
//!    sum to exactly the number of routed queries.
//! 3. **Property level** — the [`Planner`]'s decision table is a pure
//!    function of its [`StatsSnapshot`]: two planners built from equal
//!    snapshots decide identically for every query class, so `explain`
//!    output and static routing are reproducible run-to-run.

use simsearch_core::{
    AutoBackend, Backend, BackendChoice, CellSample, EngineKind, Planner, SearchEngine,
    SeqVariant, Strategy,
};
use simsearch_data::{Alphabet, CityGenerator, Dataset, DnaGenerator, StatsSnapshot, WorkloadSpec};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen};

const SEED: u64 = 0x0004_0706;

fn presets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("city", CityGenerator::new(0xC17E_7E57).generate(400)),
        (
            "dna",
            DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250),
        ),
    ]
}

fn workload_for(dataset: &Dataset) -> simsearch_data::Workload {
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload =
        WorkloadSpec::new(&[1, 2, 3], 1_000, 0x0A07_0B0E).generate(dataset, &alphabet);
    assert_eq!(workload.len(), 1_000);
    workload
}

fn all_strategies() -> Vec<Strategy> {
    let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for threads in [1, 4, 8] {
        strategies.push(Strategy::FixedPool { threads });
        strategies.push(Strategy::WorkQueue { threads });
        strategies.push(Strategy::Adaptive { max_threads: threads });
    }
    strategies
}

#[test]
fn auto_matches_the_v1_oracle_under_every_executor() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        // Static planning and probe-calibrated planning may route the
        // same query differently; both must be invisible in the results.
        let static_auto = SearchEngine::build_auto(&dataset, 1, None);
        let calibrated = SearchEngine::build_auto(&dataset, 1, Some(&workload.prefix(16)));
        for (label, engine) in [("static", &static_auto), ("calibrated", &calibrated)] {
            for strategy in all_strategies() {
                assert_eq!(
                    engine.run_with_strategy(&workload, strategy),
                    baseline,
                    "{name}/{label} auto under {}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn plan_decision_counters_account_for_every_query() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let engine = SearchEngine::build_auto(&dataset, 1, Some(&workload.prefix(16)));
        let runs = 3u64;
        for _ in 0..runs {
            let _ = engine.run(&workload);
        }
        let counts = engine.plan_counts().expect("auto engines expose counters");
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(
            total,
            runs * workload.len() as u64,
            "{name}: every routed query is counted exactly once ({counts:?})"
        );
    }
}

#[test]
fn calibrated_diag_reports_the_plan() {
    let dataset = CityGenerator::new(0xC17E_7E57).generate(400);
    let workload = workload_for(&dataset);
    let auto = AutoBackend::calibrated(&dataset, 1, &workload.prefix(16));
    let diag = auto.diag();
    let plan = diag.plan.expect("auto backends report their plan");
    assert!(plan.calibrated);
    assert_eq!(plan.snapshot, StatsSnapshot::compute(&dataset));
    assert!(!plan.decisions.is_empty());
}

/// The top-k cost model: iterative deepening is routed by its own
/// curve ([`Planner::decide_topk`]), not the threshold table — the
/// decision may differ per (count, radius), but whatever arm it picks
/// must answer byte-identically to the exhaustive V1 deepening.
#[test]
fn topk_routing_matches_the_exhaustive_oracle_for_every_count() {
    let dataset = CityGenerator::new(0xC17E_7E57).generate(400);
    let workload = workload_for(&dataset);
    let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
    let auto = AutoBackend::calibrated(&dataset, 1, &workload.prefix(16));
    let planner = auto.planner();
    for (i, q) in workload.queries.iter().take(120).enumerate() {
        for count in [1usize, 10, 100] {
            let (want, _) = oracle.backend().search_top_k_with(&q.text, count, 16);
            let (got, _) = auto.search_top_k_with(&q.text, count, 16);
            assert_eq!(got, want, "query {i} count={count}: routed arm diverged");
            // The decision itself: deterministic, within the candidate
            // roster, and free to disagree with the threshold table.
            let d = planner.decide_topk(q.text.len(), count, 16);
            assert_eq!(d.chosen, planner.decide_topk(q.text.len(), count, 16).chosen);
            assert!(planner.candidates().contains(&d.chosen), "{:?}", d.chosen);
        }
    }
}

/// Force the two curves apart with synthetic measurements: an arm that
/// is observed blazing fast for thresholds but terrible under
/// deepening must win `decide` and lose `decide_topk` — proof the
/// top-k curve is modelled separately, not derived from the table.
#[test]
fn the_topk_curve_is_its_own_cost_model() {
    let dataset = CityGenerator::new(0xC17E_7E57).generate(400);
    let snapshot = simsearch_data::StatsSnapshot::compute(&dataset);
    let rows = Planner::new(snapshot.clone(), &AutoBackend::DEFAULT_CANDIDATES)
        .decisions()
        .len();
    let fast = CellSample { nanos: 1, predicted: 1_000_000_000, count: 64 };
    let slow = CellSample { nanos: 1_000_000_000_000, predicted: 1, count: 64 };
    let flat = BackendChoice::ScanFlat.index();
    let radix = BackendChoice::Radix.index();
    // Thresholds: flat measured ~1e-9×, radix ~1e12×. Deepening: the
    // exact opposite.
    let mut row = [CellSample::default(); BackendChoice::COUNT];
    row[flat] = fast;
    row[radix] = slow;
    let cells = vec![row; rows];
    let mut topk = [CellSample::default(); BackendChoice::COUNT];
    topk[flat] = slow;
    topk[radix] = fast;
    let planner = Planner::with_class_samples(
        snapshot,
        &AutoBackend::DEFAULT_CANDIDATES,
        &cells,
        &topk,
        8,
    );
    assert!(planner.is_calibrated());
    for (query_len, k, count) in [(4usize, 1u32, 1usize), (8, 2, 10), (12, 3, 100)] {
        assert_eq!(
            planner.decide(query_len, k).chosen,
            BackendChoice::ScanFlat,
            "len={query_len} k={k}: the threshold table trusts the fast arm"
        );
        assert_eq!(
            planner.decide_topk(query_len, count, 8).chosen,
            BackendChoice::Radix,
            "len={query_len} count={count}: the deepening curve routes away"
        );
    }
}

#[test]
fn plan_decisions_are_deterministic_for_a_fixed_snapshot() {
    // Random corpora (including empty strings and duplicates): the
    // decision table is a pure function of the snapshot, so building the
    // planner twice — or from a snapshot that survived a disk round-trip
    // — yields identical decisions for every query class and identical
    // routing for arbitrary (|q|, k).
    let corpus: Gen<Vec<Vec<u8>>> = gen::vec_of(gen::bytes_from(b"abcAB\xC3", 0..12), 1..30);
    check(
        "plan_decisions_are_deterministic_for_a_fixed_snapshot",
        Config::cases(60).seed(SEED),
        &gen::zip3(corpus, gen::usize_in(0..40), gen::u32_in(0..20)),
        |(words, query_len, k)| {
            let ds = Dataset::from_records(words.clone());
            let snapshot = StatsSnapshot::compute(&ds);
            let a = Planner::new(snapshot.clone(), &AutoBackend::DEFAULT_CANDIDATES);
            let b = Planner::new(snapshot.clone(), &AutoBackend::DEFAULT_CANDIDATES);
            prop_assert_eq!(a.decisions(), b.decisions());
            prop_assert_eq!(a.decide(*query_len, *k), b.decide(*query_len, *k));
            // The snapshot itself is deterministic and round-trips, so a
            // planner restored from a persisted snapshot plans the same.
            let mut bytes = Vec::new();
            snapshot.write_to(&mut bytes).unwrap();
            let restored = StatsSnapshot::read_from(&mut bytes.as_slice()).unwrap();
            let c = Planner::new(restored, &AutoBackend::DEFAULT_CANDIDATES);
            prop_assert_eq!(a.decisions(), c.decisions());
            prop_assert!(!a.is_calibrated());
            Ok(())
        },
    );
}
