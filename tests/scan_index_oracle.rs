//! The scan/index oracle: the paper's correctness methodology (§3.7 /
//! §4.4) as one suite.
//!
//! Two layers:
//!
//! 1. **Structure level** — every index structure (trie, radix trie,
//!    frequency-annotated radix, q-gram index, length buckets, suffix
//!    array, BK-tree) returns exactly the brute-force result set on
//!    random corpora, in both paper and modern pruning modes.
//! 2. **Workload level** — on generated city and DNA datasets, the best
//!    sequential scan and every index engine return identical match sets
//!    over 1,000-query workloads cycling k ∈ {1, 2, 3}
//!    ([`simsearch_testkit::assert_scan_index_equal`]).

use simsearch_data::{
    Alphabet, CityGenerator, Dataset, DnaGenerator, Match, MatchSet, WorkloadSpec,
};
use simsearch_distance::levenshtein;
use simsearch_index::{qgram::SearchScratch, LengthBuckets, QgramIndex, RadixTrie, Trie};
use simsearch_testkit::{
    assert_scan_index_equal, check, gen, prop_assert, prop_assert_eq, Config, Gen,
};

const SEED: u64 = 0x000A_C1E5;

fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
    ds.iter()
        .filter_map(|(id, r)| {
            let d = levenshtein(q, r);
            (d <= k).then_some(Match::new(id, d))
        })
        .collect()
}

fn word() -> Gen<Vec<u8>> {
    gen::bytes_from(b"abcAB\xC3", 0..10)
}

fn corpus() -> Gen<Vec<Vec<u8>>> {
    gen::vec_of(word(), 0..25)
}

/// `(corpus, query, k)` — the input shape of most structure properties.
fn scenario() -> Gen<(Vec<Vec<u8>>, Vec<u8>, u32)> {
    gen::zip3(corpus(), word(), gen::u32_in(0..5))
}

// ---- structure level (folded from crates/index/tests/equivalence.rs) ----

#[test]
fn trie_equals_brute_force() {
    check(
        "trie_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let trie = simsearch_index::trie::build(&ds);
            prop_assert_eq!(trie.search(q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn radix_equals_brute_force() {
    check(
        "radix_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let radix = simsearch_index::radix::build(&ds);
            prop_assert_eq!(radix.search(q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn radix_with_freq_equals_brute_force() {
    check(
        "radix_with_freq_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let radix = simsearch_index::radix::build_with_freq(&ds, *b"ABabc");
            prop_assert_eq!(radix.search(q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn qgram_equals_brute_force() {
    check(
        "qgram_equals_brute_force",
        Config::default().seed(SEED),
        &gen::zip4(corpus(), word(), gen::u32_in(0..5), gen::usize_in(1..4)),
        |(words, q, k, qsize)| {
            let ds = Dataset::from_records(words);
            let idx = QgramIndex::build(&ds, *qsize);
            let mut scratch = SearchScratch::new(ds.len());
            prop_assert_eq!(
                idx.search_with(&ds, q, *k, &mut scratch),
                brute_force(&ds, q, *k)
            );
            Ok(())
        },
    );
}

#[test]
fn length_buckets_equal_brute_force() {
    check(
        "length_buckets_equal_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let buckets = LengthBuckets::build(&ds);
            prop_assert_eq!(buckets.search(&ds, q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn suffix_index_equals_brute_force() {
    check(
        "suffix_index_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let idx = simsearch_index::SuffixIndex::build(&ds);
            prop_assert_eq!(idx.search(&ds, q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn bktree_equals_brute_force() {
    check(
        "bktree_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let tree = simsearch_index::BkTree::build(&ds);
            prop_assert_eq!(tree.search(&ds, q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn compression_preserves_structure_counts() {
    check(
        "compression_preserves_structure_counts",
        Config::default().seed(SEED),
        &corpus(),
        |words| {
            let ds = Dataset::from_records(words);
            let trie: Trie = simsearch_index::trie::build(&ds);
            let radix: RadixTrie = simsearch_index::radix::build(&ds);
            // Compression never increases the node count, and both see the
            // same number of records.
            prop_assert!(radix.node_count() <= trie.node_count());
            prop_assert_eq!(radix.record_count(), trie.record_count());
            Ok(())
        },
    );
}

#[test]
fn trie_paper_mode_equals_brute_force() {
    check(
        "trie_paper_mode_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let trie = simsearch_index::trie::build(&ds);
            prop_assert_eq!(trie.search_paper(q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn radix_paper_mode_equals_brute_force() {
    check(
        "radix_paper_mode_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let radix = simsearch_index::radix::build(&ds);
            prop_assert_eq!(radix.search_paper(q, *k), brute_force(&ds, q, *k));
            Ok(())
        },
    );
}

#[test]
fn paper_and_modern_modes_agree() {
    check(
        "paper_and_modern_modes_agree",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let radix = simsearch_index::radix::build(&ds);
            prop_assert_eq!(radix.search_paper(q, *k), radix.search(q, *k));
            let trie = simsearch_index::trie::build(&ds);
            prop_assert_eq!(trie.search_paper(q, *k), trie.search(q, *k));
            Ok(())
        },
    );
}

#[test]
fn trie_hamming_equals_brute_force() {
    use simsearch_distance::hamming::hamming_within;
    check(
        "trie_hamming_equals_brute_force",
        Config::default().seed(SEED),
        &scenario(),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let trie = simsearch_index::trie::build(&ds);
            let expected: MatchSet = ds
                .iter()
                .filter_map(|(id, r)| hamming_within(q, r, *k).map(|d| Match::new(id, d)))
                .collect();
            prop_assert_eq!(trie.search_hamming(q, *k), expected);
            Ok(())
        },
    );
}

#[test]
fn traced_searches_equal_untraced() {
    check(
        "traced_searches_equal_untraced",
        Config::default().seed(SEED),
        &gen::zip3(corpus(), word(), gen::u32_in(0..4)),
        |(words, q, k)| {
            let ds = Dataset::from_records(words);
            let radix = simsearch_index::radix::build(&ds);
            let (m1, t1) = radix.search_traced(q, *k);
            prop_assert_eq!(&m1, &radix.search(q, *k));
            let (m2, t2) = radix.search_paper_traced(q, *k);
            prop_assert_eq!(&m2, &m1);
            // The paper descent never prunes earlier than the modern one.
            prop_assert!(
                t2.rows_computed >= t1.rows_computed || t1.nodes_visited >= t2.nodes_visited
            );
            Ok(())
        },
    );
}

// ---- workload level: 1,000 scan-vs-index query comparisons each ----

#[test]
fn scan_and_indexes_agree_on_city_workload() {
    let dataset = CityGenerator::new(0xC17E_7E57).generate(400);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload = WorkloadSpec::new(&[1, 2, 3], 1_000, 0x00C1_7E0A_7E57).generate(&dataset, &alphabet);
    assert_eq!(workload.len(), 1_000);
    assert_scan_index_equal(&dataset, &workload).unwrap();
}

#[test]
fn scan_and_indexes_agree_on_dna_workload() {
    // A small genome forces heavy read overlap, so queries have many
    // near-matches right at the k boundary.
    let dataset = DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload = WorkloadSpec::new(&[1, 2, 3], 1_000, 0x000D_7A0A_7E57).generate(&dataset, &alphabet);
    assert_eq!(workload.len(), 1_000);
    assert_scan_index_equal(&dataset, &workload).unwrap();
}

#[test]
fn v7_matches_the_v1_oracle_under_every_executor() {
    use simsearch_parallel::Strategy;
    use simsearch_scan::{SeqVariant, SequentialScan};

    let city = CityGenerator::new(0xC17E_7E57).generate(400);
    let dna = DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250);
    for (name, dataset) in [("city", city), ("dna", dna)] {
        let alphabet = Alphabet::from_corpus(dataset.records());
        let workload = WorkloadSpec::new(&[1, 2, 3], 1_000, 0x0007_5047_ED00).generate(&dataset, &alphabet);
        assert_eq!(workload.len(), 1_000);
        let scan = SequentialScan::new(&dataset);
        let baseline = scan.run(SeqVariant::V1Base, &workload);
        let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
        for threads in [1, 4, 8] {
            strategies.push(Strategy::FixedPool { threads });
            strategies.push(Strategy::WorkQueue { threads });
            strategies.push(Strategy::Adaptive { max_threads: threads });
        }
        for strategy in strategies {
            assert_eq!(
                scan.run_v7(strategy, &workload),
                baseline,
                "{name} under {}",
                strategy.name()
            );
        }
    }
}

#[test]
fn random_corpora_scan_index_equivalence() {
    // Property form: fresh random corpus and workload every case, smaller
    // but adversarially shaped (empty strings, duplicate records).
    check(
        "random_corpora_scan_index_equivalence",
        Config::cases(40).seed(SEED),
        &gen::zip(gen::vec_of(word(), 1..30), gen::u64_any()),
        |(words, wl_seed)| {
            let ds = Dataset::from_records(words);
            let alphabet = Alphabet::new(b"abcAB\xC3");
            let workload = WorkloadSpec::new(&[1, 2, 3], 9, *wl_seed).generate(&ds, &alphabet);
            assert_scan_index_equal(&ds, &workload)
        },
    );
}
