//! The paper's worked examples and stated properties, as executable
//! assertions.

use simsearch::core::presets;
use simsearch::data::{DatasetStats, Dataset};
use simsearch::distance::{
    ed_within_early_abort, levenshtein, levenshtein_full_with, DpMatrix,
};

/// §2.2 / Figure 1: the full DP matrix for "AGGCGT" vs "AGAGT".
#[test]
fn figure_1_matrix() {
    let mut m = DpMatrix::new();
    let d = levenshtein_full_with(&mut m, b"AGGCGT", b"AGAGT");
    assert_eq!(d, 2);
    // The paper's walkthrough: the final entry copies M[5][4] because
    // both strings end in 'T'.
    assert_eq!(m.get(6, 5), m.get(5, 4));
    // Boundary conditions (eq. (2)).
    for i in 0..=6 {
        assert_eq!(m.get(i, 0), i as u32);
    }
    for j in 0..=5 {
        assert_eq!(m.get(0, j), j as u32);
    }
}

/// §3.2 / Figure 2: with k = 1 the decisive-diagonal abort rejects
/// "AGGCGT" vs "AGAGT" early (the paper aborts after M[4][3]).
#[test]
fn figure_2_early_abort() {
    assert_eq!(ed_within_early_abort(b"AGGCGT", b"AGAGT", 1), None);
    assert_eq!(ed_within_early_abort(b"AGGCGT", b"AGAGT", 2), Some(2));
    // The worked condition (8): 6 >= 5, (4 - 1) = 3, and M[4][3] = 2 > 1.
    let mut m = DpMatrix::new();
    levenshtein_full_with(&mut m, b"AGGCGT", b"AGAGT");
    assert_eq!(m.get(4, 3), 2);
}

/// §4.2 / Figure 4: inserting Berlin, Bern and Ulm, compression merges
/// single-child chains ("the sample prefix tree only includes half of
/// the nodes").
#[test]
fn figure_4_compression() {
    let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
    let trie = simsearch::index::trie::build(&ds);
    let radix = simsearch::index::radix::build(&ds);
    assert_eq!(trie.node_count(), 11);
    assert_eq!(radix.node_count(), 5);
    assert!(radix.node_count() * 2 <= trie.node_count());
}

/// Table I: the synthetic datasets match the paper's stated properties
/// (alphabet size, length bounds, threshold cycles).
#[test]
fn table_1_dataset_properties() {
    let city = presets::city(5_000);
    let stats = DatasetStats::compute(&city.dataset);
    assert_eq!(stats.records, 5_000);
    assert!(stats.max_len <= 64, "city names must be at most 64 bytes");
    assert!(stats.symbols > 100, "city alphabet should be large (ca. 255)");
    let ks: Vec<u32> = city.workload.prefix(4).iter().map(|q| q.threshold).collect();
    assert_eq!(ks, vec![0, 1, 2, 3]);

    let dna = presets::dna(1_000);
    let stats = DatasetStats::compute(&dna.dataset);
    assert_eq!(stats.records, 1_000);
    assert!(stats.symbols <= 5, "DNA alphabet is A, C, G, N, T");
    assert!((80.0..120.0).contains(&stats.mean_len), "reads are ca. 100");
    let ks: Vec<u32> = dna.workload.prefix(4).iter().map(|q| q.threshold).collect();
    assert_eq!(ks, vec![0, 4, 8, 16]);
}

/// §2.1: the problem definition — every returned string satisfies
/// eq. (1), and nothing satisfying it is missed.
#[test]
fn problem_definition_equation_1() {
    let ds = Dataset::from_records(["AGGCGT", "AGAGT", "AGGT", "TTTT"]);
    let engine = simsearch::core::SearchEngine::build(
        &ds,
        simsearch::core::EngineKind::Scan(simsearch::core::SeqVariant::V4Flat),
    );
    for k in 0..5 {
        let result = engine.search(b"AGGCGT", k);
        for (id, record) in ds.iter() {
            let within = levenshtein(b"AGGCGT", record) <= k;
            assert_eq!(result.contains(id), within, "id={id} k={k}");
        }
    }
}
