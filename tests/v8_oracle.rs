//! The V8 oracle gate: the bit-parallel sweep is byte-identical to the
//! V1 brute-force scan everywhere it can be reached.
//!
//! Three layers:
//!
//! 1. **Engine level** — the `scan[V8]` engine returns the V1 oracle's
//!    match sets over 1,000-query city and DNA workloads, under every
//!    executor × thread count {1, 4, 8}.
//! 2. **Planner level** — the static *and* calibrated auto planners,
//!    whose candidate set now includes the bit-parallel arm, stay
//!    byte-identical to the oracle (routing to V8 is a pure
//!    performance decision), and the `scan-bitparallel` arm appears in
//!    their decision counters.
//! 3. **Shard level** — every shard pinned to the bit-parallel arm
//!    (the §11 per-shard planners' V8 case) agrees with the oracle
//!    under both partitioners.

use simsearch_core::{
    AutoBackend, Backend, BackendChoice, EngineKind, SearchEngine, SeqVariant, ShardBy,
    ShardedBackend, Strategy,
};
use simsearch_data::{Alphabet, CityGenerator, Dataset, DnaGenerator, WorkloadSpec};

fn presets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("city", CityGenerator::new(0xC17E_7E57).generate(400)),
        (
            "dna",
            DnaGenerator::new(0xD7A_7E57).genome_len(4_000).generate(250),
        ),
    ]
}

fn workload_for(dataset: &Dataset) -> simsearch_data::Workload {
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload =
        WorkloadSpec::new(&[1, 2, 3], 1_000, 0x0A07_0B0E).generate(dataset, &alphabet);
    assert_eq!(workload.len(), 1_000);
    workload
}

fn all_strategies() -> Vec<Strategy> {
    let mut strategies = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for threads in [1, 4, 8] {
        strategies.push(Strategy::FixedPool { threads });
        strategies.push(Strategy::WorkQueue { threads });
        strategies.push(Strategy::Adaptive { max_threads: threads });
    }
    strategies
}

#[test]
fn v8_matches_the_v1_oracle_under_every_executor() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        let v8 = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V8BitParallel));
        assert_eq!(v8.run(&workload), baseline, "{name} V8 default scheduling");
        for strategy in all_strategies() {
            assert_eq!(
                v8.run_with_strategy(&workload, strategy),
                baseline,
                "{name} V8 under {}",
                strategy.name()
            );
        }
    }
}

#[test]
fn planners_with_the_bitparallel_arm_match_the_v1_oracle() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        assert!(
            AutoBackend::DEFAULT_CANDIDATES.contains(&BackendChoice::ScanBitParallel),
            "the planner's candidate set includes the V8 arm"
        );
        let static_auto = SearchEngine::build_auto(&dataset, 1, None);
        let calibrated = SearchEngine::build_auto(&dataset, 1, Some(&workload.prefix(16)));
        for (label, engine) in [("static", &static_auto), ("calibrated", &calibrated)] {
            for strategy in all_strategies() {
                assert_eq!(
                    engine.run_with_strategy(&workload, strategy),
                    baseline,
                    "{name}/{label} auto under {}",
                    strategy.name()
                );
            }
            let counts = engine.plan_counts().expect("auto engines expose counters");
            assert!(
                counts.iter().any(|(arm, _)| *arm == "scan-bitparallel"),
                "{name}/{label}: the bit-parallel arm is a counted candidate ({counts:?})"
            );
        }
    }
}

#[test]
fn shards_pinned_to_the_bitparallel_arm_match_the_v1_oracle() {
    for (name, dataset) in presets() {
        let workload = workload_for(&dataset);
        let oracle = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V1Base));
        let baseline = oracle.run(&workload);
        for by in [ShardBy::Len, ShardBy::Hash] {
            let sharded = ShardedBackend::with_fixed_arm(
                &dataset,
                3,
                by,
                2,
                BackendChoice::ScanBitParallel,
            );
            sharded.prepare();
            assert_eq!(
                sharded.run_workload(&workload),
                baseline,
                "{name} sharded V8 arm, --shard-by {}",
                by.name()
            );
        }
    }
}
