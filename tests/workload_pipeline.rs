//! End-to-end pipeline integration: generate → serialize → parse →
//! search → serialize results, with determinism checks at every stage.

use simsearch::core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch::data::{io, Alphabet, CityGenerator, DnaGenerator, MatchSet, WorkloadSpec};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simsearch-it-{}-{name}", std::process::id()))
}

#[test]
fn full_city_pipeline_round_trips() {
    let dataset = CityGenerator::new(77).generate(800);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload = WorkloadSpec::new(&[0, 1, 2, 3], 60, 77).generate(&dataset, &alphabet);

    // Serialize and re-read both files.
    let dpath = tmp("pipeline.data");
    let qpath = tmp("pipeline.queries");
    io::write_dataset(&dpath, &dataset).unwrap();
    io::write_queries(&qpath, &workload).unwrap();
    let dataset2 = io::read_dataset(&dpath).unwrap();
    let workload2 = io::read_queries(&qpath).unwrap();
    assert_eq!(dataset.len(), dataset2.len());
    assert!(dataset.iter().zip(dataset2.iter()).all(|(a, b)| a == b));
    assert_eq!(workload, workload2);

    // Search on the re-read data must equal search on the original.
    let e1 = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let e2 = SearchEngine::build(&dataset2, EngineKind::Index(IdxVariant::I2Compressed));
    assert_eq!(e1.run(&workload), e2.run(&workload2));

    // Results serialize in the competition format.
    let results = e1.run(&workload);
    let rpath = tmp("pipeline.results");
    let id_lists: Vec<Vec<u32>> = results.iter().map(MatchSet::ids).collect();
    io::write_results(&rpath, &id_lists).unwrap();
    let text = std::fs::read_to_string(&rpath).unwrap();
    assert_eq!(text.lines().count(), workload.len());

    for p in [dpath, qpath, rpath] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn dna_generation_is_stable_across_runs() {
    // The same seed must produce byte-identical reads and workloads —
    // the property every measurement in EXPERIMENTS.md relies on.
    let a = DnaGenerator::new(123).genome_len(20_000).generate(300);
    let b = DnaGenerator::new(123).genome_len(20_000).generate(300);
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    let alpha = Alphabet::from_corpus(a.records());
    let wa = WorkloadSpec::new(&[0, 4, 8, 16], 50, 9).generate(&a, &alpha);
    let wb = WorkloadSpec::new(&[0, 4, 8, 16], 50, 9).generate(&b, &alpha);
    assert_eq!(wa, wb);
}

#[test]
fn search_results_are_deterministic_across_engines_and_runs() {
    let dataset = DnaGenerator::new(5).genome_len(15_000).generate(200);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload = WorkloadSpec::new(&[0, 4, 8, 16], 20, 5).generate(&dataset, &alphabet);
    let engine = SearchEngine::build(&dataset, EngineKind::Index(IdxVariant::I1BaseTrie));
    let r1 = engine.run(&workload);
    let r2 = engine.run(&workload);
    assert_eq!(r1, r2);
    // Parallel executions produce the same ordered output.
    let pooled = SearchEngine::build(
        &dataset,
        EngineKind::Index(IdxVariant::I3Pool { threads: 4 }),
    );
    assert_eq!(pooled.run(&workload), r1);
}
