#!/bin/sh
# Offline CI gate: the workspace has zero external dependencies, so
# everything here runs with --offline and must pass on a machine with no
# registry access.
set -eux

cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Bench binaries run in single-iteration smoke mode under `cargo test`
# (no --bench flag), keeping every bench code path compile- and
# run-checked without measuring.
cargo test -q --offline --benches -p simsearch-bench
cargo test -q --offline --bench ablation_lcp_reuse -p simsearch-bench
cargo clippy --offline --workspace --all-targets -- -D warnings

# Planner-parity gate: `--backend auto` (static and calibrated) must be
# byte-identical to the V1 oracle scan under every executor × thread
# count, the plan-decision counters must account for every query, and
# top-k deepening — routed by its own cost curve — must match the
# exhaustive V1 deepening for every count.
cargo test -q --offline --test planner_parity

# Replan-oracle gate: live recalibration across a mid-run distribution
# shift must keep every answer byte-identical to the V1 oracle while
# plan_epoch advances once per converged phase; a restarted daemon must
# boot from persisted calibration (epoch > 0) unless the dataset
# snapshot mismatches, in which case it falls back to the static table.
# The calibration arithmetic's laws (positivity, boundedness, scale
# invariance, pooled fallback) gate separately as properties.
cargo test -q --offline --test replan_oracle
cargo test -q --offline -p simsearch-testkit --test calibration_props

# Shard-equivalence gate: a sharded backend (every shard count ×
# partitioner × executor, static and calibrated, threshold and top-k)
# must be byte-identical to the unsharded V1 oracle, and per-shard
# decision counters must account for every fanned-out query.
cargo test -q --offline --test shard_oracle

# Live-ingest gates: any interleaving of INSERT/DELETE/QUERY/TOPK/
# COMPACT must answer exactly like a fresh V1 scan over the surviving
# records (shrinking to a minimal interleaving on failure), under every
# executor × thread count — for the unsharded engine AND every sharded
# live composite (1/2/4 hash-routed shards); and every compaction step —
# flush, tiered merge, tombstone elision — must be an atomic re-layout
# that queries racing it (including per-shard compactors running
# concurrently) can never observe half-done. The mutation router's laws
# (purity, dense disjoint ids, delete-finds-inserter) gate separately.
cargo test -q --offline --test live_oracle
cargo test -q --offline --test live_compaction
cargo test -q --offline -p simsearch-testkit --test router_props

# V8 bit-parallel gate: the Myers-block sweep (as an engine, as a
# planner arm under static and calibrated routing, and pinned per
# shard) must be byte-identical to the V1 oracle under every executor
# × thread count on both alphabets.
cargo test -q --offline --test v8_oracle

# Partition-join gate: PASS-JOIN and MinJoin must return the nested-loop
# join's pair list pair-for-pair — on shrunk random corpora over both
# alphabets, on fixed city/DNA presets under every executor × thread
# count, and on the degenerate inputs (empty, singleton, all-identical,
# k beyond the longest record).
cargo test -q --offline --test join_oracle

# Canonical benchmark snapshots (published by `cargo bench` via
# testkit's publish_snapshot) must stay committed at the repo root.
for snapshot in BENCH_fig6_city_best.json BENCH_fig7_dna_best.json \
    BENCH_ablation_lcp_reuse_city.json BENCH_ablation_lcp_reuse_dna.json \
    BENCH_ablation_bitparallel_city.json BENCH_ablation_bitparallel_dna.json \
    BENCH_ablation_join_city.json; do
    test -f "$snapshot"
done

# Serving-layer smoke test, fully offline: boot simsearchd on an
# ephemeral loopback port, probe HEALTH, run one query, check that
# STATS parses as JSON (the client's --check-stats-json uses the
# in-house validator — no python/jq needed), then SHUTDOWN and
# require the drain to finish within a timeout.
SIMSEARCH=./target/release/simsearch
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
"$SIMSEARCH" generate --kind city --count 2000 --seed 7 --out "$smoke_dir/city.data"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --port 0 \
    --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
"$SIMSEARCH" client --port "$port" --send 'HEALTH' | grep -qx 'OK healthy'
"$SIMSEARCH" client --port "$port" --send 'QUERY 2 Berlin' | grep -q '^OK '
"$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS' \
    | grep -q 'simsearch-bench-v2'
# JOIN streams on a frozen daemon: the header advertises the pair
# count, at least one pair chunk follows (seed-7 city data has near
# duplicates at k=1), and STATS carries the join counters.
join_out=$("$SIMSEARCH" client --port "$port" --send 'JOIN 1')
echo "$join_out" | grep -q '^OK join [1-9]'
echo "$join_out" | grep -q '^OK pairs '
"$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS' \
    | grep -q '"join_pairs_emitted": [1-9]'
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# Auto-backend serve smoke: a planner-driven daemon must route queries,
# report per-backend plan_decisions counters through STATS (still valid
# JSON per the in-house validator), accept a background replan tick
# once the observation grid converges, and persist the calibrated table
# at shutdown.
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --backend auto --port 0 \
    --replan-interval-ms 50 --calibration "$smoke_dir/calib.idx" \
    --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
"$SIMSEARCH" client --port "$port" --send 'QUERY 2 Berlin' | grep -q '^OK '
# Second query: the counters are published after each executed chunk,
# so by the time this reply arrives the first chunk's counts are live.
"$SIMSEARCH" client --port "$port" --send 'QUERY 1 Ulm' | grep -q '^OK '
"$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS' \
    | grep -q '"plan_decisions": {.*": [1-9]'
# Fill one observation cell past the replan trust threshold, give the
# 50ms tick a beat, and STATS must show an accepted swap.
i=0
while [ "$i" -lt 16 ]; do
    i=$((i + 1))
    "$SIMSEARCH" client --port "$port" --send 'QUERY 2 Berlin' >/dev/null
done
sleep 0.3
stats=$("$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS')
echo "$stats" | grep -q '"replans": [1-9]'
echo "$stats" | grep -q '"plan_epoch": [1-9]'
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (auto) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"
test -s "$smoke_dir/calib.idx"

# Restarted auto daemon: same dataset + the calibration file just
# persisted — the measured table is restored before the first request,
# so STATS shows plan_epoch > 0 from frame one.
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --backend auto --port 0 \
    --calibration "$smoke_dir/calib.idx" --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
"$SIMSEARCH" client --port "$port" --send 'QUERY 2 Berlin' | grep -q '^OK '
stats=$("$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS')
echo "$stats" | grep -q '"replans": [1-9]'
echo "$stats" | grep -q '"plan_epoch": [1-9]'
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (auto restart) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# Bit-parallel routing smoke: on DNA-length queries at high k the auto
# planner must route to the V8 arm, and STATS must show a nonzero
# scan-bitparallel plan_decisions counter (still valid JSON).
"$SIMSEARCH" generate --kind dna --count 500 --seed 7 --out "$smoke_dir/dna.data"
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/dna.data" --backend auto --port 0 \
    --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
dna_q=$(head -n 1 "$smoke_dir/dna.data")
"$SIMSEARCH" client --port "$port" --send "QUERY 16 $dna_q" | grep -q '^OK '
"$SIMSEARCH" client --port "$port" --send "QUERY 16 $dna_q" | grep -q '^OK '
"$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS' \
    | grep -q '"scan-bitparallel": [1-9]'
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (dna auto) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# Sharded serve smoke: a --shards 4 daemon calibrates one planner per
# shard and STATS must carry per-shard plan_decisions ("s<i>.<arm>"
# keys) and per-shard match counters, still as valid JSON.
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --shards 4 --shard-by len \
    --port 0 --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
"$SIMSEARCH" client --port "$port" --send 'QUERY 2 Berlin' | grep -q '^OK '
"$SIMSEARCH" client --port "$port" --send 'QUERY 1 Ulm' | grep -q '^OK '
stats=$("$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS')
echo "$stats" | grep -q '"s0\.'
echo "$stats" | grep -q '"s3\.'
echo "$stats" | grep -q '"shard_matches": {"s0": '
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (sharded) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# Live-ingest serve smoke: a --live daemon accepts INSERT/DELETE over
# the wire, the mutations are immediately visible to QUERY, and STATS
# carries the LSM gauges (memtable_len / segments / compactions), still
# as valid JSON.
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --live --memtable-cap 64 \
    --port 0 --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
# The record uses bytes (#, digits) outside the city generator's
# alphabet, so the exact-match query can only ever hit the insert.
"$SIMSEARCH" client --port "$port" --send 'INSERT zz#live-smoke-9' | grep -qx 'OK id=2000'
"$SIMSEARCH" client --port "$port" --send 'QUERY 0 zz#live-smoke-9' | grep -qx 'OK 1 2000:0'
"$SIMSEARCH" client --port "$port" --send 'DELETE 2000' | grep -qx 'OK deleted'
"$SIMSEARCH" client --port "$port" --send 'DELETE 2000' | grep -qx 'OK absent'
"$SIMSEARCH" client --port "$port" --send 'QUERY 0 zz#live-smoke-9' | grep -qx 'OK 0'
stats=$("$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS')
echo "$stats" | grep -q '"memtable_len"'
echo "$stats" | grep -q '"segments"'
echo "$stats" | grep -q '"compactions"'
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (live) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# Sharded-live serve smoke: --live composes with --shards — 4 hash-
# routed LiveEngine shards behind one daemon. INSERT routes to one
# shard and is immediately visible to cross-shard QUERY, DELETE finds
# the inserting shard, and STATS carries per-shard LSM gauges
# ("s<i>.memtable_len" keys) alongside the aggregates, still as valid
# JSON per the in-house validator.
rm -f "$smoke_dir/port"
"$SIMSEARCH" serve --data "$smoke_dir/city.data" --live --shards 4 \
    --memtable-cap 64 --port 0 --port-file "$smoke_dir/port" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
test -s "$smoke_dir/port"
port=$(cat "$smoke_dir/port")
"$SIMSEARCH" client --port "$port" --send 'INSERT zz#live-smoke-9' | grep -qx 'OK id=2000'
"$SIMSEARCH" client --port "$port" --send 'QUERY 0 zz#live-smoke-9' | grep -qx 'OK 1 2000:0'
"$SIMSEARCH" client --port "$port" --send 'DELETE 2000' | grep -qx 'OK deleted'
"$SIMSEARCH" client --port "$port" --send 'DELETE 2000' | grep -qx 'OK absent'
"$SIMSEARCH" client --port "$port" --send 'QUERY 0 zz#live-smoke-9' | grep -qx 'OK 0'
# Churn burst: hammer inserts and queries so the per-shard replan ticks
# run against moving memtables, then require STATS to carry the
# self-tuning counters (present and zero-initialised even when no
# shard's preferred arm flips — the keys are unconditional).
i=0
while [ "$i" -lt 12 ]; do
    i=$((i + 1))
    "$SIMSEARCH" client --port "$port" --send "INSERT zz#churn-$i" >/dev/null
    "$SIMSEARCH" client --port "$port" --send 'QUERY 1 Berlin' >/dev/null
done
sleep 0.2
stats=$("$SIMSEARCH" client --port "$port" --check-stats-json --send 'STATS')
echo "$stats" | grep -q '"s0\.memtable_len"'
echo "$stats" | grep -q '"s3\.memtable_len"'
echo "$stats" | grep -q '"memtable_len"'
echo "$stats" | grep -q '"replans": '
echo "$stats" | grep -q '"plan_epoch": '
"$SIMSEARCH" client --port "$port" --send 'SHUTDOWN' | grep -qx 'OK bye'
i=0
while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid"
    echo "simsearchd (sharded live) failed to drain within 10s" >&2
    exit 1
fi
wait "$serve_pid"

# A len partitioner cannot route live inserts: the daemon must refuse
# to boot, with a message naming the fix, before binding a port.
if "$SIMSEARCH" serve --data "$smoke_dir/city.data" --live --shards 2 \
    --shard-by len --port 0 2>"$smoke_dir/reject.err"; then
    echo "simsearchd accepted --live --shards --shard-by len" >&2
    exit 1
fi
grep -q 'shard-by hash' "$smoke_dir/reject.err"
