#!/bin/sh
# Offline CI gate: the workspace has zero external dependencies, so
# everything here runs with --offline and must pass on a machine with no
# registry access.
set -eux

cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Bench binaries run in single-iteration smoke mode under `cargo test`
# (no --bench flag), keeping every bench code path compile- and
# run-checked without measuring.
cargo test -q --offline --benches -p simsearch-bench
cargo test -q --offline --bench ablation_lcp_reuse -p simsearch-bench
cargo clippy --offline --workspace --all-targets -- -D warnings

# Canonical benchmark snapshots (published by `cargo bench` via
# testkit's publish_snapshot) must stay committed at the repo root.
for snapshot in BENCH_fig6_city_best.json BENCH_fig7_dna_best.json \
    BENCH_ablation_lcp_reuse_city.json BENCH_ablation_lcp_reuse_dna.json; do
    test -f "$snapshot"
done
