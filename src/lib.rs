//! # simsearch
//!
//! Facade crate of the `simsearch` workspace: a Rust reproduction of
//! *"Trying to outperform a well-known index with a sequential scan"*
//! (Hentschel, Meyer, Rommel; EDBT/ICDT 2013).
//!
//! Re-exports the public API of every sub-crate. See the README for a
//! quickstart and `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]

pub use simsearch_core as core;
pub use simsearch_data as data;
pub use simsearch_distance as distance;
pub use simsearch_filters as filters;
pub use simsearch_index as index;
pub use simsearch_parallel as parallel;
pub use simsearch_scan as scan;
pub use simsearch_serve as serve;
